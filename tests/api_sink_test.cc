// Push-based result delivery: ResultSink callbacks, per-subscription
// delivery modes, earliest-decision positions, and short-circuit
// filtering.
//
// The contracts under test:
//  * decided positions are an engine-specific measurable, exact and
//    deterministic (automata commit on accepting-state entry, frontier
//    at endElement aggregation, naive only at endDocument);
//  * sink callback sequences (slots, doc indices, ordinals, order) are
//    bit-identical between threads = 1 and sharded engines for every
//    registered engine;
//  * short_circuit changes the work, never the results — and malformed
//    document tails still fail even though no engine sees them.

#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "workload/doc_generator.h"
#include "workload/query_generator.h"
#include "workload/scenarios.h"
#include "xpstream/xpstream.h"

namespace xpstream {
namespace {

/// Records every callback in arrival order.
struct RecordingSink : ResultSink {
  // (slot, doc_index, event_ordinal)
  std::vector<std::tuple<size_t, size_t, size_t>> matches;
  std::vector<std::pair<size_t, std::vector<bool>>> documents;

  void OnMatch(size_t slot, size_t doc_index, size_t ordinal) override {
    matches.emplace_back(slot, doc_index, ordinal);
  }
  void OnDocumentDone(size_t doc_index,
                      const std::vector<bool>& verdicts) override {
    documents.emplace_back(doc_index, verdicts);
  }
};

// Fixture document, with event ordinals:
//   0 startDocument, 1 <a>, 2 <b>, 3 </b>, 4 <c>, 5 "v", 6 </c>,
//   7 </a>, 8 endDocument.
EventStream FixtureDocument() {
  return {Event::StartDocument(), Event::StartElement("a"),
          Event::StartElement("b"), Event::EndElement("b"),
          Event::StartElement("c"), Event::Text("v"),
          Event::EndElement("c"),   Event::EndElement("a"),
          Event::EndDocument()};
}

std::vector<std::string> LinearQueries(size_t count, uint64_t seed) {
  Random rng(seed);
  std::vector<std::string> queries;
  for (size_t i = 0; i < count; ++i) {
    auto query = GenerateLinearQuery(&rng, 1 + rng.Uniform(5), 0.35, 0.15, 4);
    EXPECT_TRUE(query.ok());
    queries.push_back((*query)->ToString());
  }
  return queries;
}

EventCorpus Corpus(size_t docs, uint64_t seed) {
  Random rng(seed);
  DocGenOptions options;
  options.max_depth = 6;
  options.name_pool = 4;
  options.names = {"s0", "s1", "s2", "s3"};
  EventCorpus corpus;
  for (size_t i = 0; i < docs; ++i) {
    corpus.Add(GenerateRandomDocument(&rng, options));
  }
  return corpus;
}

// Engine-specific commitment points on the fixture, exact: the NFA
// decides //b on ⟨b⟩ (ordinal 2), the frontier engine one event later
// at ⟨/b⟩ (its leaf captures resolve at endElement), and the naive
// engine only at endDocument (ordinal 8) — the Θ(|D|)-buffering
// extreme the instrument is built to expose.
TEST(ApiSinkTest, DecidedPositionsAreEngineCommitmentPoints) {
  const EventStream doc = FixtureDocument();

  struct Case {
    const char* engine;
    const char* query;
    size_t expected;
  };
  const Case cases[] = {
      {"nfa", "//b", 2},       {"lazy_dfa", "//b", 2},
      {"nfa_index", "//b", 2}, {"frontier", "//b", 3},
      {"naive", "//b", 8},     {"nfa", "/a/c", 4},
      {"frontier", "/a/c", 7},  // child-axis top: aggregated at </a>
      {"nfa", "//zzz", 8},      // non-match decides at endDocument
      {"frontier", "//zzz", 8},
  };
  for (const Case& c : cases) {
    auto engine = Engine::Create(c.engine);
    ASSERT_TRUE(engine.ok()) << c.engine;
    ASSERT_TRUE((*engine)->Subscribe("q", c.query).ok())
        << c.engine << " " << c.query;
    ASSERT_TRUE((*engine)->FilterEvents(doc).ok()) << c.engine;
    auto decided = (*engine)->DecidedAt("q");
    ASSERT_TRUE(decided.ok()) << c.engine;
    EXPECT_EQ(*decided, c.expected) << c.engine << " " << c.query;
  }
}

// The three automaton engines share acceptance semantics, so their
// earliest-decision positions must agree exactly on shared fixtures.
TEST(ApiSinkTest, AutomatonEnginesAgreeOnEarliestPositions) {
  const std::vector<std::string> queries = LinearQueries(17, 20260401);
  const EventCorpus corpus = Corpus(10, 11);

  std::vector<std::vector<size_t>> reference;  // per doc, per slot
  for (const char* name : {"nfa", "lazy_dfa", "nfa_index"}) {
    auto engine = Engine::Create(name);
    ASSERT_TRUE(engine.ok()) << name;
    for (size_t q = 0; q < queries.size(); ++q) {
      ASSERT_TRUE(
          (*engine)->Subscribe("q" + std::to_string(q), queries[q]).ok())
          << name << " " << queries[q];
    }
    std::vector<std::vector<size_t>> positions;
    for (const EventStream& events : corpus) {
      ASSERT_TRUE((*engine)->FilterEvents(events).ok()) << name;
      positions.push_back((*engine)->last_decided_at());
      ASSERT_EQ(positions.back().size(), queries.size());
    }
    if (reference.empty()) {
      reference = std::move(positions);
    } else {
      EXPECT_EQ(positions, reference) << name;
    }
  }
}

// kEarliest pushes at the deciding event; kAtEnd defers the same
// notification (same ordinal) to document completion. Verified by
// stepping events one at a time.
TEST(ApiSinkTest, DeliveryModesControlNotificationTiming) {
  auto engine = Engine::Create("nfa");
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(
      (*engine)->Subscribe("early", "//b", DeliveryMode::kEarliest).ok());
  ASSERT_TRUE((*engine)->Subscribe("late", "//b").ok());  // kAtEnd default
  RecordingSink sink;
  (*engine)->SetSink(&sink);

  const EventStream doc = FixtureDocument();
  for (size_t i = 0; i < doc.size(); ++i) {
    ASSERT_TRUE((*engine)->OnEvent(doc[i]).ok());
    if (i >= 2 && i + 1 < doc.size()) {
      // After ⟨b⟩ (ordinal 2) the kEarliest subscription has been
      // delivered; the kAtEnd one waits for the document boundary.
      ASSERT_EQ(sink.matches.size(), 1u) << "after event " << i;
      EXPECT_EQ(sink.matches[0], std::make_tuple(size_t{0}, size_t{0},
                                                 size_t{2}));
      EXPECT_TRUE(sink.documents.empty());
    }
  }
  ASSERT_EQ(sink.matches.size(), 2u);
  // The deferred notification still reports the decided position.
  EXPECT_EQ(sink.matches[1], std::make_tuple(size_t{1}, size_t{0}, size_t{2}));
  ASSERT_EQ(sink.documents.size(), 1u);
  EXPECT_EQ(sink.documents[0].second, (std::vector<bool>{true, true}));
}

// The acceptance contract: sink delivery (slots, ordinals, order) is
// bit-identical between threads = 1 and sharded engines for all five
// registry engines, on both the SAX batch path and the byte path.
TEST(ApiSinkTest, SinkDeliveryBitIdenticalAcrossThreadCounts) {
  const std::vector<std::string> queries = LinearQueries(23, 20240401);
  const EventCorpus corpus = Corpus(8, 7);

  for (const std::string& name : Engine::AvailableEngines()) {
    RecordingSink reference;
    std::vector<std::vector<size_t>> reference_positions;
    for (size_t threads : {1u, 2u, 4u}) {
      EngineOptions options;
      options.engine = name;
      options.threads = threads;
      auto engine = Engine::Create(options);
      ASSERT_TRUE(engine.ok()) << name;
      RecordingSink sink;
      (*engine)->SetSink(&sink);
      for (size_t q = 0; q < queries.size(); ++q) {
        // Mixed delivery modes must not perturb ordering or content.
        ASSERT_TRUE((*engine)
                        ->Subscribe("q" + std::to_string(q), queries[q],
                                    q % 3 == 0 ? DeliveryMode::kAtEnd
                                               : DeliveryMode::kEarliest)
                        .ok())
            << name;
      }
      std::vector<std::vector<size_t>> positions;
      for (const EventStream& events : corpus) {
        ASSERT_TRUE((*engine)->FilterEvents(events).ok())
            << name << " threads=" << threads;
        positions.push_back((*engine)->last_decided_at());
      }
      if (threads == 1) {
        reference = std::move(sink);
        reference_positions = std::move(positions);
      } else {
        EXPECT_EQ(sink.matches, reference.matches)
            << name << " threads=" << threads;
        EXPECT_EQ(sink.documents, reference.documents)
            << name << " threads=" << threads;
        EXPECT_EQ(positions, reference_positions)
            << name << " threads=" << threads;
      }
    }
  }
}

// Short-circuit is a pure work cut: verdicts, history, decided
// positions and sink callbacks all match the full scan — for the
// facade skip path (threads = 1) and the shard replay cut alike.
TEST(ApiSinkTest, ShortCircuitMatchesFullScan) {
  // All subscriptions decide in the prologue; a filler tail follows.
  EventStream doc;
  doc.push_back(Event::StartDocument());
  doc.push_back(Event::StartElement("feed"));
  // Static storage: the events view these names for the whole test.
  for (const char* name : {"h0", "h1", "h2", "h3"}) {
    doc.push_back(Event::StartElement(name));
    doc.push_back(Event::EndElement(name));
  }
  for (int i = 0; i < 100; ++i) {
    doc.push_back(Event::StartElement("x"));
    doc.push_back(Event::Text("filler"));
    doc.push_back(Event::EndElement("x"));
  }
  doc.push_back(Event::EndElement("feed"));
  doc.push_back(Event::EndDocument());
  // A second document where not everything matches: no cut happens.
  EventStream partial = FixtureDocument();

  for (const char* name : {"nfa", "frontier", "nfa_index"}) {
    for (size_t threads : {1u, 2u}) {
      RecordingSink reference;
      std::vector<std::vector<bool>> reference_history;
      std::vector<size_t> reference_positions;
      for (bool short_circuit : {false, true}) {
        EngineOptions options;
        options.engine = name;
        options.threads = threads;
        options.short_circuit = short_circuit;
        auto engine = Engine::Create(options);
        ASSERT_TRUE(engine.ok()) << name;
        RecordingSink sink;
        (*engine)->SetSink(&sink);
        for (int i = 0; i < 4; ++i) {
          ASSERT_TRUE((*engine)
                          ->Subscribe("h" + std::to_string(i),
                                      "//h" + std::to_string(i),
                                      DeliveryMode::kEarliest)
                          .ok())
              << name;
        }
        ASSERT_TRUE((*engine)->FilterEvents(doc).ok()) << name;
        std::vector<size_t> positions = (*engine)->last_decided_at();
        ASSERT_TRUE((*engine)->FilterEvents(partial).ok()) << name;
        if (!short_circuit) {
          reference = std::move(sink);
          reference_history = (*engine)->history();
          reference_positions = std::move(positions);
          EXPECT_EQ((*engine)->documents_short_circuited(), 0u);
        } else {
          EXPECT_EQ(sink.matches, reference.matches)
              << name << " threads=" << threads;
          EXPECT_EQ(sink.documents, reference.documents)
              << name << " threads=" << threads;
          EXPECT_EQ((*engine)->history(), reference_history)
              << name << " threads=" << threads;
          EXPECT_EQ((*engine)->last_decided_at().size(), 4u);
          EXPECT_EQ(positions, reference_positions)
              << name << " threads=" << threads;
          if (threads == 1) {
            // The facade skipped the tail of the all-match document
            // (sharded engines cut inside the replay instead).
            EXPECT_EQ((*engine)->documents_short_circuited(), 1u) << name;
          }
        }
      }
    }
  }
}

// A malformed tail after the decision point must still fail: byte
// input through the parser, SAX input through the depth check.
TEST(ApiSinkTest, ShortCircuitRejectsMalformedTails) {
  EngineOptions options;
  options.engine = "nfa";
  options.short_circuit = true;

  {  // Byte path: mismatched close tag after //b already decided.
    auto engine = Engine::Create(options);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->Subscribe("q", "//b").ok());
    auto verdicts = (*engine)->FilterXml("<a><b/><c></a>");
    EXPECT_FALSE(verdicts.ok());
    EXPECT_EQ((*engine)->documents_seen(), 0u);
    auto retry = (*engine)->FilterXml("<a><b/></a>");
    ASSERT_TRUE(retry.ok());
    EXPECT_TRUE((*retry)[0]);
    EXPECT_EQ((*engine)->documents_seen(), 1u);
  }
  {  // SAX path: unbalanced endElement in the skipped tail.
    auto engine = Engine::Create(options);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->Subscribe("q", "//b").ok());
    EventStream events = {Event::StartDocument(), Event::StartElement("a"),
                          Event::StartElement("b"), Event::EndElement("b"),
                          Event::EndElement("a"),   Event::EndElement("a"),
                          Event::EndDocument()};
    auto verdicts = (*engine)->FilterEvents(events);
    EXPECT_FALSE(verdicts.ok());
    EXPECT_EQ((*engine)->documents_seen(), 0u);
  }
  {  // SAX path: endDocument while skipped elements are still open.
    auto engine = Engine::Create(options);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE((*engine)->Subscribe("q", "//b").ok());
    EventStream events = {Event::StartDocument(), Event::StartElement("a"),
                          Event::StartElement("b"), Event::EndElement("b"),
                          Event::StartElement("open"), Event::EndDocument()};
    auto verdicts = (*engine)->FilterEvents(events);
    EXPECT_FALSE(verdicts.ok());
    EXPECT_EQ((*engine)->documents_seen(), 0u);
    // The engine stays usable for the next (well-formed) document.
    auto retry = (*engine)->FilterEvents(FixtureDocument());
    ASSERT_TRUE(retry.ok());
    EXPECT_TRUE((*retry)[0]);
  }
}

// Zero subscriptions with short_circuit on: nothing can decide, the
// guard must not trip, and documents still complete.
TEST(ApiSinkTest, ShortCircuitZeroSubscriptions) {
  EngineOptions options;
  options.engine = "frontier";
  options.short_circuit = true;
  auto engine = Engine::Create(options);
  ASSERT_TRUE(engine.ok());
  auto verdicts = (*engine)->FilterXml("<a><b/></a>");
  ASSERT_TRUE(verdicts.ok());
  EXPECT_TRUE(verdicts->empty());
  EXPECT_EQ((*engine)->documents_seen(), 1u);
  EXPECT_EQ((*engine)->documents_short_circuited(), 0u);
}

// Doc indices in callbacks follow documents_seen across a stream, and
// detaching the sink stops deliveries.
TEST(ApiSinkTest, DocIndicesAndDetach) {
  auto engine = Engine::Create("nfa_index");
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(
      (*engine)->Subscribe("q", "//b", DeliveryMode::kEarliest).ok());
  RecordingSink sink;
  (*engine)->SetSink(&sink);
  const EventStream doc = FixtureDocument();
  ASSERT_TRUE((*engine)->FilterEvents(doc).ok());
  ASSERT_TRUE((*engine)->FilterEvents(doc).ok());
  ASSERT_EQ(sink.matches.size(), 2u);
  EXPECT_EQ(std::get<1>(sink.matches[0]), 0u);
  EXPECT_EQ(std::get<1>(sink.matches[1]), 1u);
  ASSERT_EQ(sink.documents.size(), 2u);
  EXPECT_EQ(sink.documents[1].first, 1u);

  (*engine)->SetSink(nullptr);
  ASSERT_TRUE((*engine)->FilterEvents(doc).ok());
  EXPECT_EQ(sink.matches.size(), 2u);
  EXPECT_EQ(sink.documents.size(), 2u);
  EXPECT_EQ((*engine)->documents_seen(), 3u);
}

// The frontier engine's decided positions survive the predicate
// fragment (outside the automaton engines' reach) and line up between
// single-threaded and sharded runs on a realistic corpus.
TEST(ApiSinkTest, FrontierPredicateSubscriptionPositionsSharded) {
  const std::vector<std::string> subscriptions = BibliographySubscriptions();
  std::vector<std::vector<size_t>> reference;
  for (size_t threads : {1u, 4u}) {
    EngineOptions options;
    options.engine = "frontier";
    options.threads = threads;
    auto engine = Engine::Create(options);
    ASSERT_TRUE(engine.ok());
    for (size_t s = 0; s < subscriptions.size(); ++s) {
      ASSERT_TRUE(
          (*engine)->Subscribe("s" + std::to_string(s), subscriptions[s]).ok());
    }
    std::vector<std::vector<size_t>> positions;
    for (auto& document : GenerateBibliographyCorpus(10, 4242)) {
      ASSERT_TRUE((*engine)->FilterEvents(document->ToEvents()).ok());
      positions.push_back((*engine)->last_decided_at());
    }
    if (threads == 1) {
      reference = std::move(positions);
    } else {
      EXPECT_EQ(positions, reference);
    }
  }
}

// Adversarial corpora: the deep-recursion generator drives decided
// positions apart (descendant queries decide deep inside the nest)
// while the wide-fanout generator keeps frontier state flat; both must
// agree across thread counts.
TEST(ApiSinkTest, AdversarialCorporaPositionsStable) {
  const EventStream deep = GenerateDeepRecursionDocument(32);
  const EventStream wide = GenerateWideFanoutDocument(64);
  for (const EventStream* doc : {&deep, &wide}) {
    std::vector<size_t> reference;
    for (size_t threads : {1u, 2u}) {
      EngineOptions options;
      options.engine = "frontier";
      options.threads = threads;
      auto engine = Engine::Create(options);
      ASSERT_TRUE(engine.ok());
      const auto subscriptions = doc == &deep ? DeepRecursionSubscriptions()
                                              : WideFanoutSubscriptions();
      for (size_t s = 0; s < subscriptions.size(); ++s) {
        ASSERT_TRUE((*engine)
                        ->Subscribe("s" + std::to_string(s), subscriptions[s])
                        .ok());
      }
      ASSERT_TRUE((*engine)->FilterEvents(*doc).ok());
      if (threads == 1) {
        reference = (*engine)->last_decided_at();
        EXPECT_EQ(reference.size(), subscriptions.size());
      } else {
        EXPECT_EQ((*engine)->last_decided_at(), reference);
      }
    }
  }
}

}  // namespace
}  // namespace xpstream
