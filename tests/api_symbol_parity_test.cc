// Symbolization parity through the public facade. The interned-symbol
// pipeline must be a pure representation change: for every engine and
// thread count, verdicts, history, decided positions, and the full
// ResultSink callback sequence must be bit-identical whether events
// reach the engines pre-symbolized (the byte path, where the facade's
// parser interns) or unsymbolized (caller-built SAX / batch events,
// resolved lazily at the matcher boundary) — and identical to the
// threads = 1 readings regardless of sharding.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "workload/doc_generator.h"
#include "workload/query_generator.h"
#include "xml/parser.h"
#include "xml/writer.h"
#include "xpstream/xpstream.h"

namespace xpstream {
namespace {

/// Records every sink callback verbatim for sequence comparison.
struct RecordingSink : ResultSink {
  // (slot, doc, ordinal) per OnMatch; (doc, verdicts) per OnDocumentDone.
  std::vector<std::tuple<size_t, size_t, size_t>> matches;
  std::vector<std::pair<size_t, std::vector<bool>>> documents;
  void OnMatch(size_t slot, size_t doc, size_t ordinal) override {
    matches.emplace_back(slot, doc, ordinal);
  }
  void OnDocumentDone(size_t doc, const std::vector<bool>& v) override {
    documents.emplace_back(doc, v);
  }
};

/// Everything observable from one engine run over a corpus.
struct RunTrace {
  std::vector<std::vector<bool>> history;
  std::vector<std::vector<size_t>> decided;  // per doc, per slot
  std::vector<std::tuple<size_t, size_t, size_t>> matches;
  std::vector<std::pair<size_t, std::vector<bool>>> documents;

  bool operator==(const RunTrace& other) const {
    return history == other.history && decided == other.decided &&
           matches == other.matches && documents == other.documents;
  }
};

enum class EntryPoint {
  kBytes,      // FilterXml: the facade's parser symbolizes
  kBatch,      // FilterEvents over unsymbolized caller events
  kSaxEvents,  // OnEvent loop over unsymbolized caller events
};

const char* EntryPointName(EntryPoint entry) {
  switch (entry) {
    case EntryPoint::kBytes:
      return "bytes";
    case EntryPoint::kBatch:
      return "batch";
    case EntryPoint::kSaxEvents:
      return "sax";
  }
  return "?";
}

RunTrace RunCorpus(const std::string& engine_name, size_t threads,
                   EntryPoint entry,
                   const std::vector<std::string>& queries,
                   const std::vector<std::string>& xml_corpus,
                   const std::vector<EventStream>& event_corpus) {
  RunTrace trace;
  EngineOptions options;
  options.engine = engine_name;
  options.threads = threads;
  auto engine = Engine::Create(options);
  EXPECT_TRUE(engine.ok()) << engine_name;
  if (!engine.ok()) return trace;
  RecordingSink sink;
  (*engine)->SetSink(&sink);
  for (size_t q = 0; q < queries.size(); ++q) {
    // Alternate delivery modes so both the earliest (mid-stream) and
    // at-end callback paths are exercised and compared.
    EXPECT_TRUE((*engine)
                    ->Subscribe("q" + std::to_string(q), queries[q],
                                q % 2 == 0 ? DeliveryMode::kEarliest
                                           : DeliveryMode::kAtEnd)
                    .ok())
        << engine_name << " rejected " << queries[q];
  }
  for (size_t d = 0; d < xml_corpus.size(); ++d) {
    switch (entry) {
      case EntryPoint::kBytes: {
        auto verdicts = (*engine)->FilterXml(xml_corpus[d]);
        EXPECT_TRUE(verdicts.ok()) << engine_name;
        break;
      }
      case EntryPoint::kBatch: {
        auto verdicts = (*engine)->FilterEvents(event_corpus[d]);
        EXPECT_TRUE(verdicts.ok()) << engine_name;
        break;
      }
      case EntryPoint::kSaxEvents: {
        for (const Event& event : event_corpus[d]) {
          EXPECT_TRUE((*engine)->OnEvent(event).ok()) << engine_name;
        }
        break;
      }
    }
    trace.decided.push_back((*engine)->last_decided_at());
  }
  trace.history = (*engine)->history();
  trace.matches = std::move(sink.matches);
  trace.documents = std::move(sink.documents);
  return trace;
}

class SymbolPipelineParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Linear queries with descendant steps, wildcards and attribute
    // leaves over the corpus name pool. lazy_dfa rejects '@' steps, so
    // the attribute-free prefix is used for it.
    Random query_rng(20260715);
    for (int i = 0; i < 12; ++i) {
      auto query = GenerateLinearQuery(&query_rng, 1 + query_rng.Uniform(4),
                                       0.35, 0.15, 4);
      ASSERT_TRUE(query.ok());
      queries_.push_back((*query)->ToString());
    }
    queries_.push_back("//s0/@id");  // attribute leaf (skipped by lazy_dfa)

    Random doc_rng(42);
    DocGenOptions options;
    options.max_depth = 6;
    options.name_pool = 4;
    options.attr_prob = 0.3;
    options.names = {"s0", "s1", "s2", "s3"};
    for (int i = 0; i < 10; ++i) {
      auto doc = GenerateRandomDocument(&doc_rng, options);
      EventStream events = doc->ToEvents();
      auto xml = EventsToXml(events);
      ASSERT_TRUE(xml.ok());
      // Re-parse (without a table) so the event corpus is exactly what
      // the byte corpus tokenizes to, minus the symbols.
      auto reparsed = ParseXmlToEvents(*xml);
      ASSERT_TRUE(reparsed.ok());
      for (const Event& e : *reparsed) {
        ASSERT_EQ(e.name_sym, kNoSymbol);  // the unsymbolized side
      }
      xml_corpus_.push_back(std::move(xml).value());
      event_buffers_.push_back(std::move(reparsed).value());
      event_corpus_.push_back(event_buffers_.back().events());
    }
  }

  std::vector<std::string> QueriesFor(const std::string& engine) const {
    if (engine != "lazy_dfa") return queries_;
    return std::vector<std::string>(queries_.begin(), queries_.end() - 1);
  }

  std::vector<std::string> queries_;
  std::vector<std::string> xml_corpus_;
  std::vector<EventBuffer> event_buffers_;  // owns the events' bytes
  std::vector<EventStream> event_corpus_;
};

TEST_F(SymbolPipelineParityTest, AllEnginesAllEntryPointsAllThreadCounts) {
  for (const std::string& name : Engine::AvailableEngines()) {
    const std::vector<std::string> queries = QueriesFor(name);
    // The reference: threads = 1, byte path (parser-symbolized events).
    const RunTrace reference = RunCorpus(name, 1, EntryPoint::kBytes,
                                         queries, xml_corpus_, event_corpus_);
    ASSERT_FALSE(reference.history.empty()) << name;
    size_t hits = 0;
    for (const auto& doc : reference.history) {
      for (bool v : doc) hits += v;
    }
    EXPECT_GT(hits, 0u) << name << ": corpus produced no matches";
    for (size_t threads : {1u, 2u, 4u}) {
      for (EntryPoint entry : {EntryPoint::kBytes, EntryPoint::kBatch,
                               EntryPoint::kSaxEvents}) {
        if (threads == 1 && entry == EntryPoint::kBytes) continue;
        const RunTrace trace = RunCorpus(name, threads, entry, queries,
                                         xml_corpus_, event_corpus_);
        EXPECT_TRUE(trace == reference)
            << name << " threads=" << threads << " entry="
            << EntryPointName(entry)
            << ": symbolized/unsymbolized runs diverge";
      }
    }
  }
}

// The facade's verdicts must also be independent of *when* names enter
// the table: a fresh engine vs one whose table is already warm from
// earlier unrelated documents (different ids for the same names).
TEST_F(SymbolPipelineParityTest, VerdictsIndependentOfTableWarmth) {
  for (const std::string& name : Engine::AvailableEngines()) {
    const std::vector<std::string> queries = QueriesFor(name);
    auto cold = Engine::Create(name);
    auto warm = Engine::Create(name);
    ASSERT_TRUE(cold.ok() && warm.ok()) << name;
    // Warm the second engine's table with names in a scrambled order.
    ASSERT_TRUE(
        (*warm)->FilterXml("<s3><s1/><zz/><s0 id=\"1\"/></s3>").ok());
    for (size_t q = 0; q < queries.size(); ++q) {
      const std::string id = "q" + std::to_string(q);
      ASSERT_TRUE((*cold)->Subscribe(id, queries[q]).ok()) << name;
      ASSERT_TRUE((*warm)->Subscribe(id, queries[q]).ok()) << name;
    }
    for (const std::string& xml : xml_corpus_) {
      auto cold_verdicts = (*cold)->FilterXml(xml);
      auto warm_verdicts = (*warm)->FilterXml(xml);
      ASSERT_TRUE(cold_verdicts.ok() && warm_verdicts.ok()) << name;
      EXPECT_EQ(*cold_verdicts, *warm_verdicts) << name;
    }
  }
}

// Events symbolized against an unrelated pipeline's table must filter
// exactly like unsymbolized ones: cached ids are verified against the
// consuming engine's table, never trusted (a foreign id falls back to
// interning instead of matching the wrong name).
TEST_F(SymbolPipelineParityTest, ForeignSymbolsAreNotTrusted) {
  // A foreign table whose ids are deliberately scrambled relative to
  // any engine's first-intern order over this corpus.
  SymbolTable foreign;
  for (const char* name : {"zz", "s3", "s1", "id", "s0", "s2"}) {
    foreign.Intern(name);
  }
  std::vector<EventBuffer> foreign_buffers;  // owns the events' bytes
  std::vector<EventStream> foreign_corpus;
  for (const std::string& xml : xml_corpus_) {
    auto events = ParseXmlToEvents(xml, &foreign);
    ASSERT_TRUE(events.ok());
    foreign_buffers.push_back(std::move(events).value());
    foreign_corpus.push_back(foreign_buffers.back().events());
  }
  for (const std::string& name : Engine::AvailableEngines()) {
    const std::vector<std::string> queries = QueriesFor(name);
    for (size_t threads : {1u, 2u}) {
      EngineOptions options;
      options.engine = name;
      options.threads = threads;
      auto plain = Engine::Create(options);
      auto fed_foreign = Engine::Create(options);
      ASSERT_TRUE(plain.ok() && fed_foreign.ok()) << name;
      for (size_t q = 0; q < queries.size(); ++q) {
        const std::string id = "q" + std::to_string(q);
        ASSERT_TRUE((*plain)->Subscribe(id, queries[q]).ok()) << name;
        ASSERT_TRUE((*fed_foreign)->Subscribe(id, queries[q]).ok()) << name;
      }
      for (size_t d = 0; d < xml_corpus_.size(); ++d) {
        auto expected = (*plain)->FilterXml(xml_corpus_[d]);
        auto actual = (*fed_foreign)->FilterEvents(foreign_corpus[d]);
        ASSERT_TRUE(expected.ok() && actual.ok()) << name;
        EXPECT_EQ(*actual, *expected)
            << name << " threads=" << threads
            << ": foreign-symbolized events changed verdicts";
      }
    }
  }
}

// A rejected Subscribe must not leave the query's names behind in the
// engine's shared table.
TEST_F(SymbolPipelineParityTest, RejectedSubscribeDoesNotPolluteTheTable) {
  for (const char* engine_name : {"nfa", "lazy_dfa"}) {
    auto engine = Engine::Create(engine_name);
    ASSERT_TRUE(engine.ok());
    const size_t before = (*engine)->stats().symbol_bytes().current();
    std::string too_long = "/r";
    for (int i = 0; i < 70; ++i) too_long += "/unique" + std::to_string(i);
    Status status = (*engine)->Subscribe("big", too_long);
    ASSERT_FALSE(status.ok()) << engine_name;
    EXPECT_EQ((*engine)->stats().symbol_bytes().current(), before)
        << engine_name << ": rejected query interned its names";
  }
}

// symbol_bytes: the facade reports its table's footprint, and the gauge
// grows as new names stream in.
TEST_F(SymbolPipelineParityTest, FacadeReportsSymbolTableFootprint) {
  auto engine = Engine::Create("frontier");
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->Subscribe("q", "/s0//s1").ok());
  const size_t after_subscribe = (*engine)->stats().symbol_bytes().current();
  EXPECT_GT(after_subscribe, 0u);  // node tests interned at subscribe
  ASSERT_TRUE((*engine)->FilterXml(xml_corpus_.front()).ok());
  EXPECT_GT((*engine)->stats().symbol_bytes().current(), after_subscribe);
}

}  // namespace
}  // namespace xpstream
