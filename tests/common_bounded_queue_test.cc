// BoundedQueue: the fixed-capacity hand-off primitive behind the
// server's per-connection outboxes. The contracts under test:
//
//  * FIFO order, capacity enforcement (TryPush refuses, Push waits);
//  * Close() wakes every blocked producer and consumer, producers fail
//    immediately, consumers drain what is queued and only then see
//    nullopt (close never discards items);
//  * the whole surface is race-free under concurrent producers and
//    consumers (this test is part of the TSan suite).

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/bounded_queue.h"

namespace xpstream {
namespace {

TEST(BoundedQueueTest, FifoWithinCapacity) {
  BoundedQueue<int> queue(4);
  EXPECT_EQ(queue.capacity(), 4u);
  EXPECT_EQ(queue.size(), 0u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(queue.TryPush(i));
  EXPECT_EQ(queue.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    auto value = queue.TryPop();
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(*value, i);
  }
  EXPECT_FALSE(queue.TryPop().has_value());
}

TEST(BoundedQueueTest, TryPushRefusesWhenFull) {
  BoundedQueue<std::string> queue(2);
  EXPECT_TRUE(queue.TryPush("a"));
  EXPECT_TRUE(queue.TryPush("b"));
  EXPECT_FALSE(queue.TryPush("c"));
  EXPECT_EQ(queue.size(), 2u);
  ASSERT_TRUE(queue.TryPop().has_value());
  EXPECT_TRUE(queue.TryPush("c"));
}

TEST(BoundedQueueTest, ZeroCapacityClampsToOne) {
  BoundedQueue<int> queue(0);
  EXPECT_EQ(queue.capacity(), 1u);
  EXPECT_TRUE(queue.TryPush(7));
  EXPECT_FALSE(queue.TryPush(8));
}

TEST(BoundedQueueTest, PushBlocksUntilSpace) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.TryPush(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(queue.Push(2));  // blocks: queue is full
    pushed.store(true);
  });
  // The producer cannot complete until the consumer makes room.
  EXPECT_FALSE(pushed.load());
  auto first = queue.Pop();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(*first, 1);
  auto second = queue.Pop();  // waits for the producer if necessary
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, 2);
  producer.join();
  EXPECT_TRUE(pushed.load());
}

TEST(BoundedQueueTest, PopBlocksUntilItem) {
  BoundedQueue<int> queue(4);
  std::thread consumer([&] {
    auto value = queue.Pop();  // blocks: queue is empty
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(*value, 42);
  });
  queue.Push(42);
  consumer.join();
}

TEST(BoundedQueueTest, CloseWakesBlockedConsumer) {
  BoundedQueue<int> queue(4);
  std::thread consumer([&] {
    auto value = queue.Pop();
    EXPECT_FALSE(value.has_value());  // closed while empty
  });
  queue.Close();
  consumer.join();
  EXPECT_TRUE(queue.closed());
}

TEST(BoundedQueueTest, CloseWakesBlockedProducer) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.TryPush(1));
  std::thread producer([&] {
    EXPECT_FALSE(queue.Push(2));  // blocked on full, then closed
  });
  queue.Close();
  producer.join();
  EXPECT_FALSE(queue.TryPush(3));  // closed refuses immediately
}

TEST(BoundedQueueTest, CloseDrainsQueuedItems) {
  BoundedQueue<int> queue(4);
  ASSERT_TRUE(queue.TryPush(1));
  ASSERT_TRUE(queue.TryPush(2));
  queue.Close();
  queue.Close();  // idempotent
  auto a = queue.Pop();
  auto b = queue.TryPop();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(*a, 1);
  EXPECT_EQ(*b, 2);
  EXPECT_FALSE(queue.Pop().has_value());  // closed and drained
}

// Multi-producer hand-off: every pushed item is popped exactly once,
// in per-producer order, with the capacity bound honored throughout.
TEST(BoundedQueueTest, MultiProducerStress) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  BoundedQueue<std::pair<int, int>> queue(8);

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.Push({p, i}));
      }
    });
  }

  std::vector<int> next(kProducers, 0);
  int total = 0;
  std::thread consumer([&] {
    while (auto item = queue.Pop()) {
      auto [p, i] = *item;
      EXPECT_EQ(i, next[p]) << "producer " << p;  // per-producer FIFO
      ++next[p];
      ++total;
    }
  });

  for (auto& thread : producers) thread.join();
  queue.Close();
  consumer.join();
  EXPECT_EQ(total, kProducers * kPerProducer);
  for (int p = 0; p < kProducers; ++p) EXPECT_EQ(next[p], kPerProducer);
}

// Producers shedding on a full queue (the sink bridge's policy): the
// consumer still sees a coherent FIFO of the accepted items.
TEST(BoundedQueueTest, TryPushSheddingUnderConcurrency) {
  BoundedQueue<int> queue(4);
  std::atomic<int> accepted{0};
  std::atomic<int> shed{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        if (queue.TryPush(i)) {
          accepted.fetch_add(1);
        } else {
          shed.fetch_add(1);
        }
      }
    });
  }
  std::atomic<int> popped{0};
  std::thread consumer([&] {
    while (queue.Pop().has_value()) popped.fetch_add(1);
  });
  for (auto& thread : producers) thread.join();
  queue.Close();
  consumer.join();
  EXPECT_EQ(accepted.load() + shed.load(), 3000);
  EXPECT_EQ(popped.load(), accepted.load());
}

}  // namespace
}  // namespace xpstream
