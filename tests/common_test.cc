#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <limits>
#include <utility>

#include "common/memory_stats.h"
#include "common/random.h"
#include "common/status.h"
#include "common/string_util.h"

namespace xpstream {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, OkStatusNormalizedToInternal) {
  Result<int> r{Status::OK()};
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

TEST(ResultTest, HoldsMoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(9));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(**r, 9);
  // Rvalue value() moves the payload out rather than copying.
  std::unique_ptr<int> owned = std::move(r).value();
  ASSERT_NE(owned, nullptr);
  EXPECT_EQ(*owned, 9);
}

TEST(ResultTest, MoveConstructionPreservesAlternative) {
  Result<std::string> src(std::string(100, 'x'));
  Result<std::string> dst(std::move(src));
  ASSERT_TRUE(dst.ok());
  EXPECT_EQ(dst->size(), 100u);

  Result<std::string> err(Status::Unsupported("axis"));
  Result<std::string> err_moved(std::move(err));
  EXPECT_FALSE(err_moved.ok());
  EXPECT_EQ(err_moved.status().code(), StatusCode::kUnsupported);
  EXPECT_EQ(err_moved.status().message(), "axis");
}

TEST(ResultTest, MutableAccessorsWriteThrough) {
  Result<std::string> r(std::string("ab"));
  ASSERT_TRUE(r.ok());
  r.value() += "c";
  *r += "d";
  r->push_back('e');
  EXPECT_EQ(*r, "abcde");
}

Result<int> DoubleOrFail(Result<int> in) {
  XPS_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagatesBothPaths) {
  Result<int> ok = DoubleOrFail(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);

  Result<int> err = DoubleOrFail(Status::ParseError("eof"));
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kParseError);
  EXPECT_EQ(err.status().message(), "eof");
}

TEST(StringUtilTest, XmlNameValidation) {
  EXPECT_TRUE(IsValidXmlName("a"));
  EXPECT_TRUE(IsValidXmlName("fn:contains"));
  EXPECT_TRUE(IsValidXmlName("a-b.c"));
  EXPECT_TRUE(IsValidXmlName("_x"));
  EXPECT_FALSE(IsValidXmlName(""));
  EXPECT_FALSE(IsValidXmlName("1a"));
  EXPECT_FALSE(IsValidXmlName("-a"));
  EXPECT_FALSE(IsValidXmlName("a b"));
}

TEST(StringUtilTest, TrimWhitespace) {
  EXPECT_EQ(TrimWhitespace("  a b \t\n"), "a b");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace(" \t "), "");
}

TEST(StringUtilTest, ParseXPathNumber) {
  EXPECT_EQ(ParseXPathNumber("42").value(), 42.0);
  EXPECT_EQ(ParseXPathNumber("-3.5").value(), -3.5);
  EXPECT_EQ(ParseXPathNumber(" 7 ").value(), 7.0);
  EXPECT_EQ(ParseXPathNumber(".5").value(), 0.5);
  EXPECT_EQ(ParseXPathNumber("1e3").value(), 1000.0);
  EXPECT_FALSE(ParseXPathNumber("").has_value());
  EXPECT_FALSE(ParseXPathNumber("abc").has_value());
  EXPECT_FALSE(ParseXPathNumber("4abc").has_value());
  EXPECT_FALSE(ParseXPathNumber("4 5").has_value());
}

TEST(StringUtilTest, FormatXPathNumber) {
  EXPECT_EQ(FormatXPathNumber(5), "5");
  EXPECT_EQ(FormatXPathNumber(-2), "-2");
  EXPECT_EQ(FormatXPathNumber(2.5), "2.5");
  EXPECT_EQ(FormatXPathNumber(0), "0");
  EXPECT_EQ(FormatXPathNumber(std::numeric_limits<double>::quiet_NaN()), "NaN");
}

TEST(StringUtilTest, XmlEscape) {
  EXPECT_EQ(XmlEscape("a<b>&\"c\""), "a&lt;b&gt;&amp;&quot;c&quot;");
  EXPECT_EQ(XmlEscape("plain"), "plain");
}

TEST(StringUtilTest, EmptyInputEdgeCases) {
  EXPECT_EQ(XmlEscape(""), "");
  EXPECT_TRUE(Contains("abc", ""));  // empty needle matches anywhere
  EXPECT_TRUE(Contains("", ""));
  EXPECT_FALSE(Contains("", "a"));
  EXPECT_TRUE(StartsWith("", ""));
  EXPECT_TRUE(EndsWith("", ""));
  EXPECT_FALSE(StartsWith("", "a"));
  EXPECT_FALSE(EndsWith("", "a"));
  // Splitting the empty string yields one empty piece, not zero pieces.
  auto parts = SplitString("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(StringPrintf("%s", ""), "");
}

TEST(StringUtilTest, Utf8MultibyteHandling) {
  // "λ" (CE BB) and "日本" (E6 97 A5, E6 9C AC): multibyte bytes all have
  // the high bit set, so they are name characters and never whitespace.
  const std::string lambda = "\xCE\xBB";
  const std::string nihon = "\xE6\x97\xA5\xE6\x9C\xAC";
  EXPECT_TRUE(IsValidXmlName(lambda));
  EXPECT_TRUE(IsValidXmlName(nihon + "-x"));
  EXPECT_FALSE(IsValidXmlName("1" + lambda));  // digit still can't lead

  // Trimming only strips ASCII whitespace; multibyte sequences survive
  // intact even when their bytes sit at the boundaries.
  EXPECT_EQ(TrimWhitespace(" \t" + lambda + " x " + nihon + "\n"),
            lambda + " x " + nihon);

  // Escaping is byte-transparent outside the five specials.
  EXPECT_EQ(XmlEscape(lambda + "<" + nihon), lambda + "&lt;" + nihon);

  // Splitting never breaks a multibyte sequence on a non-ASCII separator
  // byte, because the separators we use are ASCII.
  auto parts = SplitString(lambda + "," + nihon, ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], lambda);
  EXPECT_EQ(parts[1], nihon);
}

TEST(StringUtilTest, AffixHelpers) {
  EXPECT_TRUE(StartsWith("hello", "he"));
  EXPECT_FALSE(StartsWith("he", "hello"));
  EXPECT_TRUE(EndsWith("hello", "lo"));
  EXPECT_TRUE(Contains("hello", "ell"));
  EXPECT_FALSE(Contains("hello", "xyz"));
}

TEST(StringUtilTest, SplitString) {
  auto parts = SplitString("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
}

TEST(RandomTest, Deterministic) {
  Random a(7);
  Random b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RandomTest, UniformInRange) {
  Random rng(1);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.Uniform(10);
    EXPECT_LT(v, 10u);
  }
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.Uniform(10));
  EXPECT_EQ(seen.size(), 10u);  // all values hit
}

TEST(RandomTest, UniformRangeInclusive) {
  Random rng(2);
  bool low = false, high = false;
  for (int i = 0; i < 500; ++i) {
    int64_t v = rng.UniformRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    low = low || v == -2;
    high = high || v == 2;
  }
  EXPECT_TRUE(low);
  EXPECT_TRUE(high);
}

TEST(RandomTest, BernoulliEdges) {
  Random rng(3);
  EXPECT_FALSE(rng.Bernoulli(0));
  EXPECT_TRUE(rng.Bernoulli(1));
}

TEST(RandomTest, NextNameShape) {
  Random rng(4);
  std::string name = rng.NextName(6);
  EXPECT_EQ(name.size(), 6u);
  for (char c : name) {
    EXPECT_GE(c, 'a');
    EXPECT_LE(c, 'z');
  }
}

TEST(MemoryStatsTest, GaugeTracksPeak) {
  MemoryStats stats;
  stats.table_entries().Set(3);
  stats.table_entries().Set(10);
  stats.table_entries().Set(2);
  EXPECT_EQ(stats.table_entries().current(), 2u);
  EXPECT_EQ(stats.table_entries().peak(), 10u);
  stats.Reset();
  EXPECT_EQ(stats.table_entries().peak(), 0u);
}

TEST(MemoryStatsTest, PeakStateBits) {
  MemoryStats stats;
  stats.table_entries().Set(4);
  stats.buffered_bytes().Set(2);
  EXPECT_EQ(stats.PeakStateBits(10), 4 * 10 + 2 * 8u);
}

TEST(MemoryStatsTest, BitWidth) {
  EXPECT_EQ(BitWidth(0), 1u);
  EXPECT_EQ(BitWidth(1), 1u);
  EXPECT_EQ(BitWidth(2), 2u);
  EXPECT_EQ(BitWidth(255), 8u);
  EXPECT_EQ(BitWidth(256), 9u);
}

}  // namespace
}  // namespace xpstream
