// The persistent worker pool under the sharded dissemination path:
// Submit/future completion, fork-join ParallelFor coverage (each index
// exactly once), caller participation, zero-worker degradation, and
// reuse across many batches (the per-document dispatch pattern).

#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace xpstream {
namespace {

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.Submit([&counter] { counter.fetch_add(1); }));
  }
  for (auto& future : futures) future.wait();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, SubmitWithZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_workers(), 0u);
  int ran = 0;
  auto future = pool.Submit([&ran] { ran = 1; });
  EXPECT_EQ(ran, 1);  // already complete, no worker involved
  future.wait();
}

TEST(ThreadPoolTest, ParallelForRunsEachIndexExactlyOnce) {
  ThreadPool pool(4);
  constexpr size_t kN = 257;  // not a multiple of the thread count
  std::vector<std::atomic<int>> hits(kN);
  for (auto& h : hits) h.store(0);
  pool.ParallelFor(kN, [&hits](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForZeroAndOneAndNoWorkers) {
  ThreadPool pool(0);
  pool.ParallelFor(0, [](size_t) { FAIL() << "no index to run"; });
  size_t sum = 0;
  pool.ParallelFor(5, [&sum](size_t i) { sum += i; });  // serial: no race
  EXPECT_EQ(sum, 10u);

  ThreadPool wide(4);
  std::atomic<size_t> once{0};
  wide.ParallelFor(1, [&once](size_t i) { once.fetch_add(i + 1); });
  EXPECT_EQ(once.load(), 1u);
}

TEST(ThreadPoolTest, ParallelForIsReusableAcrossBatches) {
  // The per-document dispatch pattern: many small fork-joins on one pool.
  ThreadPool pool(2);
  std::atomic<size_t> total{0};
  for (int doc = 0; doc < 200; ++doc) {
    pool.ParallelFor(3, [&total](size_t) { total.fetch_add(1); });
  }
  EXPECT_EQ(total.load(), 600u);
}

TEST(ThreadPoolTest, ParallelForRethrowsFirstExceptionAfterJoin) {
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.ParallelFor(8,
                                [&ran](size_t i) {
                                  ran.fetch_add(1);
                                  if (i == 3) {
                                    throw std::runtime_error("boom");
                                  }
                                }),
               std::runtime_error);
  EXPECT_EQ(ran.load(), 8);  // the join completed: every index still ran
  std::atomic<int> after{0};  // and the pool stays usable
  pool.ParallelFor(4, [&after](size_t) { after.fetch_add(1); });
  EXPECT_EQ(after.load(), 4);
}

TEST(ThreadPoolTest, SubmitAndParallelForInterleave) {
  // The FilterDocuments pattern: parse jobs queued via Submit while the
  // caller fork-joins shard replays on the same pool.
  ThreadPool pool(2);
  std::atomic<int> parses{0};
  std::vector<std::future<void>> parse_jobs;
  for (int i = 0; i < 8; ++i) {
    parse_jobs.push_back(pool.Submit([&parses] { parses.fetch_add(1); }));
  }
  std::atomic<int> shards{0};
  pool.ParallelFor(4, [&shards](size_t) { shards.fetch_add(1); });
  EXPECT_EQ(shards.load(), 4);
  for (auto& job : parse_jobs) job.wait();
  EXPECT_EQ(parses.load(), 8);
}

}  // namespace
}  // namespace xpstream
