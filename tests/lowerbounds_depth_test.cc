#include <gtest/gtest.h>

#include "lowerbounds/fooling_depth.h"
#include "xml/tree_builder.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace xpstream {
namespace {

std::unique_ptr<Query> Q(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(q).value();
}

bool StreamMatches(const Query& q, const EventStream& events) {
  auto valid = ValidateEventStream(events);
  EXPECT_TRUE(valid.ok()) << valid.ToString() << "\n"
                          << EventStreamToString(events);
  auto doc = EventsToDocument(events);
  EXPECT_TRUE(doc.ok());
  return BoolEval(q, **doc);
}

TEST(DepthFoolingTest, Theorem46PaddedDocumentsMatch) {
  // Every D_i matches /a/b (the padding hangs off a, not between a and b).
  auto q = Q("/a/b");
  auto family = DepthFoolingFamily::Build(q.get());
  ASSERT_TRUE(family.ok()) << family.status().ToString();
  for (size_t i = 0; i < 12; ++i) {
    EXPECT_TRUE(StreamMatches(*q, family->Document(i, i))) << i;
  }
}

TEST(DepthFoolingTest, Theorem46CrossoversReparent) {
  // D_{i,j} with i > j re-parents b under the auxiliary chain: no match.
  auto q = Q("/a/b");
  auto family = DepthFoolingFamily::Build(q.get());
  ASSERT_TRUE(family.ok());
  for (size_t i = 1; i < 8; ++i) {
    for (size_t j = 0; j < i; ++j) {
      EventStream doc = family->Document(i, j);
      ASSERT_TRUE(ValidateEventStream(doc).ok()) << i << "," << j;
      EXPECT_FALSE(StreamMatches(*q, doc)) << i << "," << j;
    }
  }
}

TEST(DepthFoolingTest, DocumentDepthGrowsLinearly) {
  auto q = Q("/a/b");
  auto family = DepthFoolingFamily::Build(q.get());
  ASSERT_TRUE(family.ok());
  auto d0 = EventsToDocument(family->Document(0, 0));
  auto d10 = EventsToDocument(family->Document(10, 10));
  ASSERT_TRUE(d0.ok() && d10.ok());
  // The padding chains dangle from SHADOW(u)'s parent, so depth is
  // max(s, depth(parent) + i): it grows linearly once i dominates s.
  EXPECT_GE((*d10)->Depth(), 10u);
  EXPECT_LE((*d10)->Depth(), (*d0)->Depth() + 10);
}

TEST(DepthFoolingTest, GeneralizedQueries) {
  for (const char* text : {"/a/b[c and d]", "/x/y/z", "//q/a/b",
                           "/a[c > 1]/b"}) {
    auto q = Q(text);
    auto family = DepthFoolingFamily::Build(q.get());
    ASSERT_TRUE(family.ok()) << text << ": " << family.status().ToString();
    for (size_t i = 0; i < 5; ++i) {
      EXPECT_TRUE(StreamMatches(*q, family->Document(i, i)))
          << text << " i=" << i;
    }
    for (size_t i = 2; i < 5; ++i) {
      for (size_t j = 0; j < i; ++j) {
        EXPECT_FALSE(StreamMatches(*q, family->Document(i, j)))
            << text << " i=" << i << " j=" << j;
      }
    }
  }
}

TEST(DepthFoolingTest, RejectsQueriesWithoutChildStep) {
  // //a//b has no non-wildcard child step (Thm 7.14 remark).
  auto q = Q("//a//b");
  EXPECT_FALSE(DepthFoolingFamily::Build(q.get()).ok());
}

}  // namespace
}  // namespace xpstream
