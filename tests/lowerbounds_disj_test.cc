#include <gtest/gtest.h>

#include "common/random.h"
#include "lowerbounds/fooling_disj.h"
#include "xml/tree_builder.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace xpstream {
namespace {

std::unique_ptr<Query> Q(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(q).value();
}

bool StreamMatches(const Query& q, const EventStream& events) {
  auto valid = ValidateEventStream(events);
  EXPECT_TRUE(valid.ok()) << valid.ToString() << "\n"
                          << EventStreamToString(events);
  auto doc = EventsToDocument(events);
  EXPECT_TRUE(doc.ok());
  return BoolEval(q, **doc);
}

std::vector<bool> Bits(uint64_t v, size_t r) {
  std::vector<bool> out(r);
  for (size_t i = 0; i < r; ++i) out[i] = (v >> i) & 1;
  return out;
}

TEST(DisjFoolingTest, BuildsForPaperQuery) {
  auto q = Q("//a[b and c]");
  auto family = DisjFoolingFamily::Build(q.get());
  ASSERT_TRUE(family.ok()) << family.status().ToString();
  EXPECT_EQ(family->v()->ntest(), "a");
}

TEST(DisjFoolingTest, Theorem45ExhaustiveSmallR) {
  // D_{s,t} matches iff the sets intersect — exhaustively for r = 3.
  auto q = Q("//a[b and c]");
  auto family = DisjFoolingFamily::Build(q.get());
  ASSERT_TRUE(family.ok());
  const size_t r = 3;
  for (uint64_t sv = 0; sv < 8; ++sv) {
    for (uint64_t tv = 0; tv < 8; ++tv) {
      auto s = Bits(sv, r);
      auto t = Bits(tv, r);
      EventStream doc = family->Document(s, t);
      EXPECT_EQ(StreamMatches(*q, doc),
                DisjFoolingFamily::ExpectIntersects(s, t))
          << "s=" << sv << " t=" << tv << "\n"
          << EventStreamToString(doc);
    }
  }
}

TEST(DisjFoolingTest, PaperWalkthroughQuery) {
  // //d[f and a[b and c]] from the proof exposition (Figs. 11–14).
  auto q = Q("//d[f and a[b and c]]");
  auto family = DisjFoolingFamily::Build(q.get());
  ASSERT_TRUE(family.ok()) << family.status().ToString();
  // The worked example: r=3, s=110, t=010 → intersect at i=2 → match.
  std::vector<bool> s = {true, true, false};
  std::vector<bool> t = {false, true, false};
  EXPECT_TRUE(StreamMatches(*q, family->Document(s, t)));
  // s=110, t=001 → disjoint → no match.
  std::vector<bool> t2 = {false, false, true};
  EXPECT_FALSE(StreamMatches(*q, family->Document(s, t2)));
}

TEST(DisjFoolingTest, RandomizedLargeR) {
  auto q = Q("//a[b and c]");
  auto family = DisjFoolingFamily::Build(q.get());
  ASSERT_TRUE(family.ok());
  Random rng(99);
  for (int trial = 0; trial < 40; ++trial) {
    size_t r = 1 + rng.Uniform(16);
    std::vector<bool> s(r), t(r);
    for (size_t i = 0; i < r; ++i) {
      s[i] = rng.Bernoulli(0.4);
      t[i] = rng.Bernoulli(0.4);
    }
    EXPECT_EQ(StreamMatches(*q, family->Document(s, t)),
              DisjFoolingFamily::ExpectIntersects(s, t));
  }
}

TEST(DisjFoolingTest, NestedQueryVariants) {
  for (const char* text :
       {"//a[b and c]/e", "/top//a[b and c]", "//a[b and c and d]"}) {
    auto q = Q(text);
    auto family = DisjFoolingFamily::Build(q.get());
    ASSERT_TRUE(family.ok()) << text << ": " << family.status().ToString();
    std::vector<bool> s = {true, false};
    std::vector<bool> t = {true, false};
    EXPECT_TRUE(StreamMatches(*q, family->Document(s, t))) << text;
    std::vector<bool> t2 = {false, true};
    EXPECT_FALSE(StreamMatches(*q, family->Document(s, t2))) << text;
  }
}

TEST(DisjFoolingTest, RecursionDepthBounded) {
  // The documents have recursion depth ≤ r w.r.t. v (Thm 7.4).
  auto q = Q("//a[b and c]");
  auto family = DisjFoolingFamily::Build(q.get());
  ASSERT_TRUE(family.ok());
  std::vector<bool> s = {true, true, true, true};
  auto doc = EventsToDocument(family->Document(s, s));
  ASSERT_TRUE(doc.ok());
  // 4 nested a's, each with b and c -> depth-4 recursion is possible but
  // never more.
  EXPECT_LE((*doc)->Depth(), 4 * 3 + family->canonical().document->Depth());
}

TEST(DisjFoolingTest, RejectsNonRecursiveQueries) {
  auto q = Q("/a[b and c]");
  EXPECT_FALSE(DisjFoolingFamily::Build(q.get()).ok());
  auto q2 = Q("//a//b");
  EXPECT_FALSE(DisjFoolingFamily::Build(q2.get()).ok());
}

}  // namespace
}  // namespace xpstream
