#include <gtest/gtest.h>

#include "lowerbounds/fooling_frontier.h"
#include "xml/tree_builder.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace xpstream {
namespace {

std::unique_ptr<Query> Q(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(q).value();
}

bool StreamMatches(const Query& q, const EventStream& events) {
  auto valid = ValidateEventStream(events);
  EXPECT_TRUE(valid.ok()) << valid.ToString() << "\n"
                          << EventStreamToString(events);
  auto doc = EventsToDocument(events);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  return BoolEval(q, **doc);
}

TEST(FrontierFoolingTest, Theorem42FamilySize) {
  auto q = Q("/a[c[.//e and f] and b > 5]");
  auto family = FrontierFoolingFamily::Build(q.get());
  ASSERT_TRUE(family.ok()) << family.status().ToString();
  EXPECT_EQ(family->size(), 3u);  // FS(Q) = 3
}

TEST(FrontierFoolingTest, Theorem42DiagonalMatches) {
  // Claim 4.3 / 7.2: every D_T is well-formed and matches Q.
  auto q = Q("/a[c[.//e and f] and b > 5]");
  auto family = FrontierFoolingFamily::Build(q.get());
  ASSERT_TRUE(family.ok());
  for (uint64_t t = 0; t < (1ULL << family->size()); ++t) {
    EXPECT_TRUE(StreamMatches(*q, family->Document(t, t))) << "T=" << t;
  }
}

TEST(FrontierFoolingTest, Theorem42CrossoversFool) {
  // Claim 4.4 / 7.3: for T != T', at least one crossover fails to match.
  auto q = Q("/a[c[.//e and f] and b > 5]");
  auto family = FrontierFoolingFamily::Build(q.get());
  ASSERT_TRUE(family.ok());
  const uint64_t n = 1ULL << family->size();
  for (uint64_t t1 = 0; t1 < n; ++t1) {
    for (uint64_t t2 = t1 + 1; t2 < n; ++t2) {
      bool m12 = StreamMatches(*q, family->Document(t1, t2));
      bool m21 = StreamMatches(*q, family->Document(t2, t1));
      EXPECT_FALSE(m12 && m21) << "T=" << t1 << " T'=" << t2;
    }
  }
}

TEST(FrontierFoolingTest, GeneralizedQueries) {
  // Thm 7.1 on other redundancy-free queries.
  for (const char* text :
       {"/a[b and c and d]", "/r[p0 > 0 and p1 > 1 and p2 > 2]/s",
        "//a[b and c]", "/a[b[x and y] and c > 1]"}) {
    auto q = Q(text);
    auto family = FrontierFoolingFamily::Build(q.get());
    ASSERT_TRUE(family.ok()) << text << ": " << family.status().ToString();
    const uint64_t n = 1ULL << family->size();
    for (uint64_t t = 0; t < n; ++t) {
      EXPECT_TRUE(StreamMatches(*q, family->Document(t, t)))
          << text << " T=" << t;
    }
    size_t fooling_failures = 0;
    for (uint64_t t1 = 0; t1 < n; ++t1) {
      for (uint64_t t2 = t1 + 1; t2 < n; ++t2) {
        bool m12 = StreamMatches(*q, family->Document(t1, t2));
        bool m21 = StreamMatches(*q, family->Document(t2, t1));
        if (m12 && m21) ++fooling_failures;
      }
    }
    EXPECT_EQ(fooling_failures, 0u) << text;
  }
}

TEST(FrontierFoolingTest, AlphaBetaConcatenationIsWellFormed) {
  auto q = Q("/a[b and c]");
  auto family = FrontierFoolingFamily::Build(q.get());
  ASSERT_TRUE(family.ok());
  for (uint64_t t1 = 0; t1 < 4; ++t1) {
    for (uint64_t t2 = 0; t2 < 4; ++t2) {
      EXPECT_TRUE(ValidateEventStream(family->Document(t1, t2)).ok());
    }
  }
}

TEST(FrontierFoolingTest, RejectsNonRedundancyFree) {
  auto q = Q("/a[b and .//b]");
  EXPECT_FALSE(FrontierFoolingFamily::Build(q.get()).ok());
}

TEST(FrontierFoolingTest, SpansCoverDocument) {
  auto q = Q("/a[b and c]");
  auto family = FrontierFoolingFamily::Build(q.get());
  ASSERT_TRUE(family.ok());
  std::map<const XmlNode*, EventSpan> spans;
  EventStream events =
      DocumentToEventsWithSpans(*family->canonical().document, &spans);
  for (const auto& [node, span] : spans) {
    ASSERT_LT(span.end, events.size());
    if (node->kind() == NodeKind::kElement) {
      EXPECT_EQ(events[span.start].type, EventType::kStartElement);
      EXPECT_EQ(events[span.end].type, EventType::kEndElement);
      EXPECT_EQ(events[span.start].name, node->name());
    }
  }
}

}  // namespace
}  // namespace xpstream
