#include <gtest/gtest.h>

#include "lowerbounds/fooling_depth.h"
#include "lowerbounds/fooling_disj.h"
#include "lowerbounds/fooling_frontier.h"
#include "lowerbounds/state_counter.h"
#include "stream/frontier_filter.h"
#include "stream/nfa_filter.h"
#include "xml/tree_builder.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace xpstream {
namespace {

std::unique_ptr<Query> Q(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return std::move(q).value();
}

TEST(StateCounterTest, FrontierFamilyInformationBound) {
  // Lemma 3.7 + Thm 3.9 realized: at the cut, the engine must be in 2^FS
  // distinct states — one per subset — so its information content is at
  // least FS(Q) bits. Verified on our own engine.
  auto q = Q("/a[c[.//e and f] and b > 5]");
  auto family = FrontierFoolingFamily::Build(q.get());
  ASSERT_TRUE(family.ok());
  auto filter = FrontierFilter::Create(q.get());
  ASSERT_TRUE(filter.ok());

  std::vector<EventStream> alphas, betas;
  for (uint64_t t = 0; t < (1ULL << family->size()); ++t) {
    EventStream alpha;
    alpha.push_back(Event::StartDocument());
    EventStream a = family->Alpha(t);
    alpha.insert(alpha.end(), a.begin(), a.end());
    alphas.push_back(std::move(alpha));
    EventStream beta = family->Beta(t);
    beta.push_back(Event::EndDocument());
    betas.push_back(std::move(beta));
  }

  auto count = CountStatesAtCut(filter->get(), alphas);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(count->distinct_states, 1ULL << family->size());
  EXPECT_GE(count->InformationBits(), family->size());

  // Protocol correctness on all crossovers, against the evaluator.
  auto expected = [&](size_t i, size_t j) {
    auto doc = EventsToDocument(family->Document(i, j));
    EXPECT_TRUE(doc.ok());
    return BoolEval(*q, **doc);
  };
  auto verdicts =
      CheckCrossoverVerdicts(filter->get(), alphas, betas, expected);
  ASSERT_TRUE(verdicts.ok());
  EXPECT_EQ(verdicts->mismatches, 0u) << verdicts->first_mismatch;
}

TEST(StateCounterTest, DisjFamilyStateGrowth) {
  // At the DISJ cut the engine state must distinguish all 2^r subsets s.
  auto q = Q("//a[b and c]");
  auto family = DisjFoolingFamily::Build(q.get());
  ASSERT_TRUE(family.ok());
  auto filter = FrontierFilter::Create(q.get());
  ASSERT_TRUE(filter.ok());

  const size_t r = 5;
  std::vector<EventStream> alphas, betas;
  std::vector<std::vector<bool>> svecs;
  for (uint64_t v = 0; v < (1ULL << r); ++v) {
    std::vector<bool> s(r);
    for (size_t i = 0; i < r; ++i) s[i] = (v >> i) & 1;
    alphas.push_back(family->Alpha(s));
    betas.push_back(family->Beta(s));
    svecs.push_back(std::move(s));
  }
  auto count = CountStatesAtCut(filter->get(), alphas);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->distinct_states, 1ULL << r);
  EXPECT_GE(count->InformationBits(), r);

  auto expected = [&](size_t i, size_t j) {
    return DisjFoolingFamily::ExpectIntersects(svecs[i], svecs[j]);
  };
  auto verdicts =
      CheckCrossoverVerdicts(filter->get(), alphas, betas, expected);
  ASSERT_TRUE(verdicts.ok());
  EXPECT_EQ(verdicts->mismatches, 0u) << verdicts->first_mismatch;
}

TEST(StateCounterTest, DepthFamilyStateGrowth) {
  // The Ω(log d) bound: the d prefixes α_i force d distinct states
  // (the engine must know the current level).
  auto q = Q("/a/b");
  auto family = DepthFoolingFamily::Build(q.get());
  ASSERT_TRUE(family.ok());
  auto filter = FrontierFilter::Create(q.get());
  ASSERT_TRUE(filter.ok());

  const size_t d = 16;
  std::vector<EventStream> alphas;
  for (size_t i = 0; i < d; ++i) {
    alphas.push_back(family->AlphaI(i));
  }
  auto count = CountStatesAtCut(filter->get(), alphas);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->distinct_states, d);
  EXPECT_GE(count->InformationBits(), 4u);  // log2(16)
}

TEST(StateCounterTest, NfaStateCountOnDepthFamily) {
  // The automaton baseline must equally distinguish the depth prefixes.
  auto q = Q("/a/b");
  auto family = DepthFoolingFamily::Build(q.get());
  ASSERT_TRUE(family.ok());
  auto filter = NfaFilter::Create(q.get());
  ASSERT_TRUE(filter.ok());
  std::vector<EventStream> alphas;
  for (size_t i = 0; i < 8; ++i) alphas.push_back(family->AlphaI(i));
  auto count = CountStatesAtCut(filter->get(), alphas);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->distinct_states, 8u);
}

TEST(StateCounterTest, IdenticalPrefixesCollapse) {
  auto q = Q("/a/b");
  auto filter = FrontierFilter::Create(q.get());
  ASSERT_TRUE(filter.ok());
  EventStream prefix = {Event::StartDocument(), Event::StartElement("a")};
  auto count = CountStatesAtCut(filter->get(), {prefix, prefix, prefix});
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->num_inputs, 3u);
  EXPECT_EQ(count->distinct_states, 1u);
  EXPECT_EQ(count->InformationBits(), 0u);
}

}  // namespace
}  // namespace xpstream
