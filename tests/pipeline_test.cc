// The EnginePool (include/xpstream/pipeline.h): N worker replicas of
// one logical subscription population behind a bounded document queue.
// The acceptance contract: per-document results (verdicts, decided
// positions, the OnMatch sequence) observed through the pool under K
// concurrent submitters are bit-identical to a serial Engine fed the
// same documents — for every registered engine and for "auto" — and
// the control plane (Subscribe/Unsubscribe/Compact) mutates every
// replica atomically while live traffic keeps flowing.

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/random.h"
#include "workload/doc_generator.h"
#include "workload/query_generator.h"
#include "xml/parser.h"
#include "xml/writer.h"
#include "xpstream/pipeline.h"
#include "xpstream/xpstream.h"

namespace xpstream {
namespace {

std::vector<std::string> GeneratedQueries(size_t count, uint64_t seed) {
  Random rng(seed);
  std::vector<std::string> queries;
  for (size_t i = 0; i < count; ++i) {
    auto query = GenerateLinearQuery(&rng, 1 + rng.Uniform(5), 0.35, 0.15, 4);
    EXPECT_TRUE(query.ok());
    queries.push_back((*query)->ToString());
  }
  return queries;
}

std::vector<std::string> XmlCorpus(size_t docs, uint64_t seed) {
  Random rng(seed);
  DocGenOptions options;
  options.max_depth = 6;
  options.name_pool = 4;
  options.names = {"s0", "s1", "s2", "s3"};
  std::vector<std::string> corpus;
  for (size_t i = 0; i < docs; ++i) {
    auto doc = GenerateRandomDocument(&rng, options);
    auto xml = DocumentToXml(*doc);
    EXPECT_TRUE(xml.ok());
    corpus.push_back(*xml);
  }
  return corpus;
}

DeliveryMode ModeOf(size_t q) {
  return q % 3 == 0 ? DeliveryMode::kAtEnd : DeliveryMode::kEarliest;
}

// What a serial engine produced for one document.
struct DocExpected {
  std::vector<std::pair<size_t, size_t>> matches;  // (sub, ordinal), in order
  std::vector<bool> verdicts;
  std::vector<size_t> decided;
};

struct MatchRecorder : ResultSink {
  std::vector<std::pair<size_t, size_t>> matches;
  void OnMatch(size_t sub, size_t, size_t ordinal) override {
    matches.emplace_back(sub, ordinal);
  }
};

// Runs a serial Engine over the corpus, one subscription per query
// (ids "s0".."sN", modes via ModeOf), and returns per-document results.
std::vector<DocExpected> SerialReference(
    const EngineOptions& options, const std::vector<std::string>& queries,
    const std::vector<std::string>& corpus) {
  std::vector<DocExpected> expected;
  auto engine = Engine::Create(options);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  if (!engine.ok()) return expected;
  MatchRecorder sink;
  (*engine)->SetSink(&sink);
  for (size_t q = 0; q < queries.size(); ++q) {
    EXPECT_TRUE(
        (*engine)
            ->Subscribe("s" + std::to_string(q), queries[q], ModeOf(q))
            .ok())
        << queries[q];
  }
  for (const std::string& xml : corpus) {
    sink.matches.clear();
    auto verdicts = (*engine)->FilterXml(xml);
    EXPECT_TRUE(verdicts.ok());
    expected.push_back({sink.matches,
                        verdicts.ok() ? *verdicts : std::vector<bool>{},
                        (*engine)->last_decided_at()});
  }
  return expected;
}

// Thread-safe PoolSink keyed by pool document index. Callbacks for
// different documents arrive concurrently, so every touch locks.
struct RecordingSink : PoolSink {
  struct Doc {
    std::vector<std::pair<size_t, size_t>> matches;
    std::vector<bool> verdicts;
    std::vector<size_t> decided;
    std::vector<std::string> ids;
    bool done = false;
    bool failed = false;
  };
  std::mutex mutex;
  std::map<uint64_t, Doc> docs;

  void OnMatch(uint64_t doc, size_t sub, size_t ordinal,
               const SubscriptionIds&) override {
    std::lock_guard<std::mutex> lock(mutex);
    docs[doc].matches.emplace_back(sub, ordinal);
  }
  void OnDocumentDone(uint64_t doc, const SubscriptionIds& ids,
                      std::vector<bool> verdicts,
                      std::vector<size_t> decided) override {
    std::lock_guard<std::mutex> lock(mutex);
    Doc& record = docs[doc];
    record.verdicts = std::move(verdicts);
    record.decided = std::move(decided);
    record.ids = *ids;
    record.done = true;
  }
  void OnDocumentError(uint64_t doc, Status) override {
    std::lock_guard<std::mutex> lock(mutex);
    docs[doc].failed = true;
  }
};

// The tentpole contract: K concurrent submitters through a 4-worker
// pool see exactly what a serial engine sees, per document, for every
// registered engine and the planner-routed meta-engine.
TEST(EnginePoolTest, ConcurrentSubmittersMatchSerialEngineAllEngines) {
  const std::vector<std::string> queries = GeneratedQueries(11, 20260808);
  const std::vector<std::string> corpus = XmlCorpus(8, 21);
  constexpr size_t kRounds = 3;
  constexpr size_t kSubmitters = 4;

  std::vector<std::string> engines = Engine::AvailableEngines();
  engines.push_back("auto");
  for (const std::string& name : engines) {
    EngineOptions engine_options;
    engine_options.engine = name;
    engine_options.keep_history = false;
    const std::vector<DocExpected> expected =
        SerialReference(engine_options, queries, corpus);

    PipelineOptions options;
    options.engine = engine_options;
    options.workers = 4;
    options.queue_depth = 8;
    auto pool = EnginePool::Create(options);
    ASSERT_TRUE(pool.ok()) << name;
    for (size_t q = 0; q < queries.size(); ++q) {
      ASSERT_TRUE(
          (*pool)
              ->Subscribe("s" + std::to_string(q), queries[q], ModeOf(q))
              .ok())
          << name << " " << queries[q];
    }
    RecordingSink sink;
    (*pool)->SetSink(&sink);

    // Each submitter claims corpus slots off a shared cursor; which
    // document index a submission got is only known per-call, so the
    // doc -> corpus mapping is recorded as it happens.
    std::mutex map_mutex;
    std::map<uint64_t, size_t> corpus_of_doc;
    std::atomic<size_t> cursor{0};
    std::vector<std::thread> submitters;
    for (size_t t = 0; t < kSubmitters; ++t) {
      submitters.emplace_back([&] {
        while (true) {
          const size_t i = cursor.fetch_add(1);
          if (i >= corpus.size() * kRounds) break;
          const size_t ci = i % corpus.size();
          uint64_t doc = 0;
          EXPECT_TRUE((*pool)->SubmitXml(corpus[ci], &doc).ok());
          std::lock_guard<std::mutex> lock(map_mutex);
          corpus_of_doc[doc] = ci;
        }
      });
    }
    for (std::thread& thread : submitters) thread.join();
    (*pool)->Drain();

    EXPECT_EQ((*pool)->documents_submitted(), corpus.size() * kRounds);
    ASSERT_EQ((*pool)->documents_done(), corpus.size() * kRounds) << name;
    ASSERT_EQ(corpus_of_doc.size(), corpus.size() * kRounds) << name;
    for (const auto& [doc, ci] : corpus_of_doc) {
      const RecordingSink::Doc& got = sink.docs[doc];
      const DocExpected& want = expected[ci];
      EXPECT_FALSE(got.failed) << name << " doc " << doc;
      ASSERT_TRUE(got.done) << name << " doc " << doc;
      EXPECT_EQ(got.matches, want.matches) << name << " doc " << doc;
      EXPECT_EQ(got.verdicts, want.verdicts) << name << " doc " << doc;
      EXPECT_EQ(got.decided, want.decided) << name << " doc " << doc;
      ASSERT_EQ(got.ids.size(), queries.size()) << name;
      for (size_t q = 0; q < queries.size(); ++q) {
        EXPECT_EQ(got.ids[q], "s" + std::to_string(q)) << name;
      }
    }
  }
}

// Pre-parsed event batches (the TCP server's path) land on the same
// results as the XML bytes they came from.
TEST(EnginePoolTest, PreParsedEventsMatchXmlSubmission) {
  const std::vector<std::string> queries = GeneratedQueries(5, 77);
  const std::vector<std::string> corpus = XmlCorpus(4, 5);

  PipelineOptions options;
  options.engine.engine = "frontier";
  options.workers = 2;
  auto pool = EnginePool::Create(options);
  ASSERT_TRUE(pool.ok());
  for (size_t q = 0; q < queries.size(); ++q) {
    ASSERT_TRUE(
        (*pool)->Subscribe("s" + std::to_string(q), queries[q]).ok());
  }
  RecordingSink sink;
  (*pool)->SetSink(&sink);

  std::vector<std::pair<uint64_t, uint64_t>> twins;  // (as-events, as-xml)
  for (const std::string& xml : corpus) {
    auto events = ParseXmlToEvents(xml);
    ASSERT_TRUE(events.ok());
    uint64_t from_events = 0;
    ASSERT_TRUE(
        (*pool)->TrySubmitEvents(std::move(*events), &from_events).ok());
    uint64_t from_xml = 0;
    ASSERT_TRUE((*pool)->SubmitXml(xml, &from_xml).ok());
    twins.emplace_back(from_events, from_xml);
  }
  (*pool)->Drain();

  for (const auto& [from_events, from_xml] : twins) {
    const RecordingSink::Doc& a = sink.docs[from_events];
    const RecordingSink::Doc& b = sink.docs[from_xml];
    ASSERT_TRUE(a.done && b.done);
    EXPECT_EQ(a.matches, b.matches);
    EXPECT_EQ(a.verdicts, b.verdicts);
    EXPECT_EQ(a.decided, b.decided);
  }
}

// Round-robin dispatch trades work conservation for a deterministic
// document -> replica assignment; results must not change.
TEST(EnginePoolTest, RoundRobinDispatchKeepsParity) {
  const std::vector<std::string> queries = GeneratedQueries(7, 99);
  const std::vector<std::string> corpus = XmlCorpus(6, 3);
  EngineOptions engine_options;
  engine_options.engine = "nfa";
  engine_options.keep_history = false;
  const std::vector<DocExpected> expected =
      SerialReference(engine_options, queries, corpus);

  PipelineOptions options;
  options.engine = engine_options;
  options.workers = 2;
  options.dispatch = DispatchPolicy::kRoundRobin;
  auto pool = EnginePool::Create(options);
  ASSERT_TRUE(pool.ok());
  for (size_t q = 0; q < queries.size(); ++q) {
    ASSERT_TRUE(
        (*pool)
            ->Subscribe("s" + std::to_string(q), queries[q], ModeOf(q))
            .ok());
  }
  RecordingSink sink;
  (*pool)->SetSink(&sink);
  for (size_t ci = 0; ci < corpus.size(); ++ci) {
    uint64_t doc = 0;
    ASSERT_TRUE((*pool)->SubmitXml(corpus[ci], &doc).ok());
    // Single-threaded submission assigns indices in order.
    EXPECT_EQ(doc, ci);
  }
  (*pool)->Drain();
  for (size_t ci = 0; ci < corpus.size(); ++ci) {
    const RecordingSink::Doc& got = sink.docs[ci];
    ASSERT_TRUE(got.done);
    EXPECT_EQ(got.matches, expected[ci].matches) << "doc " << ci;
    EXPECT_EQ(got.verdicts, expected[ci].verdicts) << "doc " << ci;
    EXPECT_EQ(got.decided, expected[ci].decided) << "doc " << ci;
  }
}

// A sink that parks the worker inside a document's completion callback
// until released — pins one document "in evaluation" so queue-full
// states can be asserted deterministically, without timing.
struct GateSink : PoolSink {
  std::mutex mutex;
  std::condition_variable cv;
  bool open = false;

  void OnDocumentDone(uint64_t, const SubscriptionIds&, std::vector<bool>,
                      std::vector<size_t>) override {
    std::unique_lock<std::mutex> lock(mutex);
    cv.wait(lock, [&] { return open; });
  }
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mutex);
      open = true;
    }
    cv.notify_all();
  }
};

// Deterministic backpressure: with the single worker parked in the
// gate and the depth-1 queue holding the next document, TrySubmitXml
// must reject (and count) while the gauges show exactly one queued and
// one in-flight document.
TEST(EnginePoolTest, FullQueueRejectsTrySubmitAndCountsIt) {
  PipelineOptions options;
  options.engine.engine = "frontier";
  options.workers = 1;
  options.queue_depth = 1;
  auto pool = EnginePool::Create(options);
  ASSERT_TRUE(pool.ok());
  GateSink gate;
  (*pool)->SetSink(&gate);

  uint64_t first = 0;
  ASSERT_TRUE((*pool)->SubmitXml("<a/>", &first).ok());
  // Blocks until the worker takes the first document, then occupies
  // the whole queue; the worker is parked in the gate from here on.
  uint64_t second = 0;
  ASSERT_TRUE((*pool)->SubmitXml("<a/>", &second).ok());
  EXPECT_EQ(first, 0u);
  EXPECT_EQ(second, 1u);

  uint64_t third = 99;
  Status rejected = (*pool)->TrySubmitXml("<a/>", &third);
  EXPECT_EQ(rejected.code(), StatusCode::kResourceExhausted)
      << rejected.ToString();
  EXPECT_EQ(third, 99u);  // untouched on rejection
  EXPECT_EQ((*pool)->docs_queued(), 1u);
  EXPECT_EQ((*pool)->docs_in_flight(), 1u);
  EXPECT_EQ((*pool)->queue_rejects(), 1u);

  gate.Open();
  (*pool)->Drain();
  EXPECT_EQ((*pool)->documents_done(), 2u);
  EXPECT_EQ((*pool)->documents_submitted(), 2u);
  EXPECT_GE((*pool)->queue_peak(), 2u);
  EXPECT_EQ((*pool)->docs_queued(), 0u);
  EXPECT_EQ((*pool)->docs_in_flight(), 0u);
}

// Subscribe/Unsubscribe/Compact while submitters keep publishing: the
// pool quiesces around each mutation, so every completed document was
// evaluated under one coherent population snapshot — its verdict
// vector is exactly as wide as the ids it reports, and the named
// subscriptions answer correctly whichever snapshot it was.
TEST(EnginePoolTest, MutationsQuiesceWithoutPerturbingTraffic) {
  PipelineOptions options;
  options.engine.engine = "frontier";
  options.workers = 3;
  options.queue_depth = 8;
  auto pool = EnginePool::Create(options);
  ASSERT_TRUE(pool.ok());
  ASSERT_TRUE((*pool)->Subscribe("hit", "//b").ok());
  ASSERT_TRUE((*pool)->Subscribe("miss", "//nosuchname").ok());
  RecordingSink sink;
  (*pool)->SetSink(&sink);

  constexpr int kDocs = 40;
  std::atomic<int> remaining{kDocs};
  auto publish = [&] {
    while (remaining.fetch_sub(1) > 0) {
      EXPECT_TRUE((*pool)->SubmitXml("<a><b>x</b></a>").ok());
    }
  };
  std::thread one(publish);
  std::thread two(publish);

  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE((*pool)->Subscribe("extra", "//a").ok()) << i;
    ASSERT_TRUE((*pool)->CompactSubscriptions().ok()) << i;
    ASSERT_TRUE((*pool)->Unsubscribe("extra").ok()) << i;
    ASSERT_TRUE((*pool)->CompactSubscriptions().ok()) << i;
  }
  one.join();
  two.join();
  (*pool)->Drain();

  EXPECT_EQ((*pool)->documents_done(), static_cast<uint64_t>(kDocs));
  // Every replica converged to the same final population.
  for (size_t i = 0; i < (*pool)->workers(); ++i) {
    EXPECT_EQ((*pool)->replica(i).NumSubscriptions(), 2u) << "replica " << i;
  }
  SubscriptionIds final_ids = (*pool)->subscription_ids();
  ASSERT_EQ(final_ids->size(), 2u);
  EXPECT_EQ((*final_ids)[0], "hit");
  EXPECT_EQ((*final_ids)[1], "miss");

  int docs_seen = 0;
  for (const auto& [doc, record] : sink.docs) {
    EXPECT_FALSE(record.failed) << "doc " << doc;
    ASSERT_TRUE(record.done) << "doc " << doc;
    ++docs_seen;
    ASSERT_EQ(record.verdicts.size(), record.ids.size()) << "doc " << doc;
    ASSERT_EQ(record.decided.size(), record.ids.size()) << "doc " << doc;
    for (size_t s = 0; s < record.ids.size(); ++s) {
      if (record.ids[s] == "hit" || record.ids[s] == "extra") {
        EXPECT_TRUE(record.verdicts[s]) << "doc " << doc << " " << record.ids[s];
      } else {
        EXPECT_EQ(record.ids[s], "miss");
        EXPECT_FALSE(record.verdicts[s]) << "doc " << doc;
      }
    }
  }
  EXPECT_EQ(docs_seen, kDocs);
}

// A failed Subscribe — malformed query, duplicate id, or a fragment
// the engine rejects — leaves every replica's population unchanged.
TEST(EnginePoolTest, FailedSubscribeLeavesEveryReplicaUnchanged) {
  PipelineOptions options;
  options.engine.engine = "nfa";
  options.workers = 3;
  auto pool = EnginePool::Create(options);
  ASSERT_TRUE(pool.ok());
  ASSERT_TRUE((*pool)->Subscribe("keep", "//a").ok());

  EXPECT_FALSE((*pool)->Subscribe("bad", "//a[").ok());    // parse error
  EXPECT_FALSE((*pool)->Subscribe("keep", "//b").ok());    // duplicate id
  EXPECT_FALSE((*pool)->Subscribe("pred", "//a[b]").ok()); // not linear
  for (size_t i = 0; i < (*pool)->workers(); ++i) {
    EXPECT_EQ((*pool)->replica(i).NumSubscriptions(), 1u) << "replica " << i;
  }
  SubscriptionIds ids = (*pool)->subscription_ids();
  ASSERT_EQ(ids->size(), 1u);
  EXPECT_EQ((*ids)[0], "keep");

  // And the pool is not wedged: the next valid Subscribe lands
  // everywhere.
  ASSERT_TRUE((*pool)->Subscribe("second", "//b").ok());
  for (size_t i = 0; i < (*pool)->workers(); ++i) {
    EXPECT_EQ((*pool)->replica(i).NumSubscriptions(), 2u) << "replica " << i;
  }
  EXPECT_FALSE((*pool)->Unsubscribe("never-there").ok());
}

// Construction clamps and accessors.
TEST(EnginePoolTest, OptionsClampAndGaugesStartClean) {
  PipelineOptions options;
  options.engine.engine = "frontier";
  options.workers = 0;      // clamped to 1
  options.queue_depth = 0;  // clamped to 1
  auto pool = EnginePool::Create(options);
  ASSERT_TRUE(pool.ok());
  EXPECT_EQ((*pool)->workers(), 1u);
  EXPECT_EQ((*pool)->queue_depth(), 1u);
  EXPECT_EQ((*pool)->queue_peak(), 0u);
  EXPECT_EQ((*pool)->queue_rejects(), 0u);
  EXPECT_EQ((*pool)->documents_submitted(), 0u);
  EXPECT_EQ((*pool)->documents_done(), 0u);

  PipelineOptions bogus;
  bogus.engine.engine = "no_such";
  auto unknown = EnginePool::Create(bogus);
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace xpstream
