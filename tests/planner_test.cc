// The query planner and admission control (include/xpstream/planner.h,
// docs/cost_model.md). Three contracts under test:
//
//  1. Calibration: on the §4 adversarial corpora (deep recursion, wide
//     fanout, the E5 //a/*^k blowup family) every engine's predicted
//     peak is within a stated factor of its measured peak — never
//     below measured/1.5, never above measured*10 (overprediction is
//     the safe direction for admission control), and never below the
//     paper's information-theoretic floor.
//
//  2. Auto-selection: engine = "auto" routes each subscription to a
//     concrete engine whose measured peak on the E5 blowup corpus is
//     within 2x of the best engine's, with verdicts identical to every
//     concrete engine that accepts the query.
//
//  3. Admission: a subscription whose predicted peak exceeds
//     memory_budget_bytes is rejected with kResourceExhausted (or
//     admitted degraded under AdmissionPolicy::kDegrade), identically
//     through the library API and the TCP SUBSCRIBE path; dedup hits
//     and Unsubscribe interact with the budget as documented.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "workload/scenarios.h"
#include "xml/writer.h"
#include "xpstream/planner.h"
#include "xpstream/server.h"
#include "xpstream/xpstream.h"

namespace xpstream {
namespace {

constexpr const char* kEngines[] = {"naive", "nfa", "lazy_dfa", "frontier",
                                    "nfa_index"};

struct Corpus {
  std::string name;
  EventStream events;
  std::vector<std::string> queries;
};

std::vector<Corpus> AdversarialCorpora() {
  std::vector<Corpus> corpora;
  corpora.push_back({"deep_recursion", GenerateDeepRecursionDocument(64),
                     DeepRecursionSubscriptions()});
  corpora.push_back({"wide_fanout", GenerateWideFanoutDocument(256),
                     WideFanoutSubscriptions()});
  corpora.push_back({"e5_blowup", GenerateBlowupDocument(12),
                     {BlowupQuery(2), BlowupQuery(6), BlowupQuery(10)}});
  return corpora;
}

/// Runs one engine over one document with one subscription and returns
/// its measured peak: PeakBytes at the planner's 16-bytes-per-entry
/// charge, minus the pipeline-wide symbol table (the cost model prices
/// per-subscription state; interning is shared overhead). Returns 0
/// when the engine rejects the query.
size_t MeasurePeak(const std::string& engine, const std::string& query,
                   const EventStream& events, std::vector<bool>* verdicts) {
  auto eng = Engine::Create(engine);
  EXPECT_TRUE(eng.ok()) << engine;
  Status subscribed = (*eng)->Subscribe("s", query);
  if (!subscribed.ok()) {
    EXPECT_EQ(subscribed.code(), StatusCode::kUnsupported)
        << engine << " " << query << ": " << subscribed.ToString();
    return 0;
  }
  auto result = (*eng)->FilterEvents(events);
  EXPECT_TRUE(result.ok()) << engine << " " << query;
  if (verdicts != nullptr && result.ok()) *verdicts = *result;
  const MemoryStats& stats = (*eng)->stats();
  return stats.PeakBytes(16) - stats.symbol_bytes().peak();
}

TEST(PlannerTest, PredictionWithinStatedFactor) {
  for (const Corpus& corpus : AdversarialCorpora()) {
    DocumentProfile profile;
    profile.ObserveEvents(corpus.events);
    for (const std::string& text : corpus.queries) {
      auto query = CompileQuery(text);
      ASSERT_TRUE(query.ok()) << text;
      for (const char* engine : kEngines) {
        const size_t measured =
            MeasurePeak(engine, text, corpus.events, nullptr);
        if (measured == 0) continue;  // engine rejected the query
        auto cost = EstimateEngineCost(*query, profile, engine);
        ASSERT_TRUE(cost.ok()) << engine;
        const size_t predicted = cost->PredictedPeakBytes();
        // The stated factor: predictions may overshoot the measured
        // peak (the planner prices the worst document the profile
        // admits, the run may stay below it) but only up to 10x, and
        // may undershoot by at most 1.5x — an underprediction worse
        // than that would let admission control approve a subscription
        // that blows its budget.
        EXPECT_GE(predicted * 3, measured * 2)
            << corpus.name << " " << engine << " " << text << ": predicted "
            << predicted << " vs measured " << measured;
        EXPECT_LE(predicted, measured * 10)
            << corpus.name << " " << engine << " " << text << ": predicted "
            << predicted << " vs measured " << measured;
        // The estimate never beats the paper's floor for the
        // query/profile pair: Thm 4.5 / Thm 8.8 bits fit inside the
        // predicted bytes.
        EXPECT_GE(predicted * 8, cost->lower_bound_bits)
            << corpus.name << " " << engine << " " << text;
      }
    }
  }
}

TEST(PlannerTest, RankingIsSupportedFirstThenCheapest) {
  DocumentProfile profile;  // assumed defaults
  auto query = CompileQuery(BlowupQuery(8));
  ASSERT_TRUE(query.ok());
  QueryPlan plan = PlanQuery(*query, profile);
  ASSERT_EQ(plan.ranking.size(), 5u);
  bool seen_unsupported = false;
  size_t previous = 0;
  for (const EnginePrediction& prediction : plan.ranking) {
    if (!prediction.supported) {
      seen_unsupported = true;
      continue;
    }
    EXPECT_FALSE(seen_unsupported)
        << "supported engine ranked after an unsupported one";
    EXPECT_GE(prediction.cost.PredictedPeakBytes(), previous);
    previous = prediction.cost.PredictedPeakBytes();
  }
  const EnginePrediction* choice = plan.Choice();
  ASSERT_NE(choice, nullptr);
  EXPECT_EQ(choice->engine, "nfa");  // cheapest for a linear path

  // A predicate query leaves the automaton fragment: only frontier and
  // naive remain supported, and the cheaper frontier wins.
  auto withPredicate = CompileQuery("//m[h]/body");
  ASSERT_TRUE(withPredicate.ok());
  QueryPlan predicatePlan = PlanQuery(*withPredicate, profile);
  const EnginePrediction* predicateChoice = predicatePlan.Choice();
  ASSERT_NE(predicateChoice, nullptr);
  EXPECT_EQ(predicateChoice->engine, "frontier");
  for (const EnginePrediction& prediction : predicatePlan.ranking) {
    if (prediction.engine == "nfa" || prediction.engine == "lazy_dfa" ||
        prediction.engine == "nfa_index") {
      EXPECT_FALSE(prediction.supported) << prediction.engine;
    }
  }
}

TEST(PlannerTest, UnknownEngineIsNotPriceable) {
  DocumentProfile profile;
  auto query = CompileQuery("/a/b");
  ASSERT_TRUE(query.ok());
  EXPECT_EQ(EstimateEngineCost(*query, profile, "auto").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(EstimateEngineCost(*query, profile, "bogus").status().code(),
            StatusCode::kNotFound);
}

// The E5 acceptance criterion: on the blowup corpus, "auto" never picks
// an engine whose measured peak exceeds the best concrete engine's by
// more than 2x — the planner has to price lazy_dfa's 2^k table out of
// contention and land on an automaton-stack engine.
TEST(PlannerTest, AutoSelectionWithinTwiceBestOnBlowupCorpus) {
  const EventStream events = GenerateBlowupDocument(12);
  for (size_t k : {size_t{2}, size_t{6}, size_t{10}}) {
    const std::string text = BlowupQuery(k);
    size_t best = 0;
    std::vector<bool> reference;
    for (const char* engine : kEngines) {
      std::vector<bool> verdicts;
      const size_t measured = MeasurePeak(engine, text, events, &verdicts);
      if (measured == 0) continue;
      if (best == 0 || measured < best) best = measured;
      if (reference.empty()) {
        reference = verdicts;
      } else {
        EXPECT_EQ(verdicts, reference) << engine << " diverges on " << text;
      }
    }
    ASSERT_GT(best, 0u);

    std::vector<bool> autoVerdicts;
    const size_t autoMeasured =
        MeasurePeak("auto", text, events, &autoVerdicts);
    ASSERT_GT(autoMeasured, 0u);
    EXPECT_EQ(autoVerdicts, reference) << "auto diverges on " << text;
    EXPECT_LE(autoMeasured, 2 * best)
        << "auto picked an engine " << autoMeasured << " bytes vs best "
        << best << " on " << text;
  }
}

TEST(PlannerTest, AutoRoutesPerSubscriptionAndReportsThePlan) {
  auto engine = Engine::Create("auto");
  ASSERT_TRUE(engine.ok());
  // A linear path lands on an automaton engine; a predicate query
  // cannot, and must route to a tree-capable engine in the same
  // pipeline.
  ASSERT_TRUE((*engine)->Subscribe("linear", "//m/body").ok());
  ASSERT_TRUE((*engine)->Subscribe("predicate", "//m[h]/body").ok());

  auto linearPlan = (*engine)->PlanOf("linear");
  ASSERT_TRUE(linearPlan.ok());
  EXPECT_EQ(linearPlan->engine, "nfa");
  EXPECT_GT(linearPlan->predicted_peak_bytes, 0u);
  auto predicatePlan = (*engine)->PlanOf("predicate");
  ASSERT_TRUE(predicatePlan.ok());
  EXPECT_EQ(predicatePlan->engine, "frontier");

  const EventStream events = GenerateDeepRecursionDocument(8);
  auto verdicts = (*engine)->FilterEvents(events);
  ASSERT_TRUE(verdicts.ok());
  // Reference: the default engine accepts both queries.
  auto reference = Engine::Create("frontier");
  ASSERT_TRUE(reference.ok());
  ASSERT_TRUE((*reference)->Subscribe("linear", "//m/body").ok());
  ASSERT_TRUE((*reference)->Subscribe("predicate", "//m[h]/body").ok());
  auto expected = (*reference)->FilterEvents(events);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(*verdicts, *expected);
}

TEST(PlannerTest, AutoParityAcrossThreadCounts) {
  const EventStream events = GenerateDeepRecursionDocument(16);
  std::vector<std::vector<bool>> results;
  for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
    EngineOptions options;
    options.engine = "auto";
    options.threads = threads;
    auto engine = Engine::Create(options);
    ASSERT_TRUE(engine.ok()) << threads;
    ASSERT_TRUE((*engine)->Subscribe("a", "//m/body").ok());
    ASSERT_TRUE((*engine)->Subscribe("b", "//m[h]/body").ok());
    ASSERT_TRUE((*engine)->Subscribe("c", "/m/m/body").ok());
    auto verdicts = (*engine)->FilterEvents(events);
    ASSERT_TRUE(verdicts.ok()) << threads;
    results.push_back(*verdicts);
  }
  EXPECT_EQ(results[0], results[1]);
  EXPECT_EQ(results[0], results[2]);
}

TEST(PlannerTest, ObservedProfileTakesOverFromAssumed) {
  auto engine = Engine::Create("frontier");
  ASSERT_TRUE(engine.ok());
  EXPECT_EQ((*engine)->observed_profile().documents, 0u);
  const size_t assumed_depth = (*engine)->observed_profile().max_depth;
  const EventStream events = GenerateDeepRecursionDocument(64);
  ASSERT_TRUE((*engine)->FilterEvents(events).ok());
  EXPECT_EQ((*engine)->observed_profile().documents, 1u);
  // The deep corpus nests past the assumed default; the profile now
  // reports observed reality, not the assumption.
  EXPECT_GT((*engine)->observed_profile().max_depth, assumed_depth);
}

// Compact-time re-routing: "auto" admits a subscription on the engine
// cheapest under the profile known *then*; when observed documents
// shift the ranking, CompactSubscriptions() re-prices and re-routes —
// even with nothing tombstoned — without changing any answer.
TEST(PlannerTest, CompactReroutesSlotWhenProfileGrowthFlipsTheChoice) {
  auto engine = Engine::Create("auto");
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->Subscribe("s", "/a/b/c").ok());
  auto before = (*engine)->PlanOf("s");
  ASSERT_TRUE(before.ok());
  // Under the assumed profile (shallow documents) the per-level NFA
  // stack is the cheapest structure for a short child-only path.
  EXPECT_EQ(before->engine, "nfa");

  // A document nesting far past the assumption. The NFA's stack grows
  // with *document* depth; the frontier table is bounded by the query's
  // own depth (no descendant axis, so the query never recurses), so
  // past some depth the ranking flips.
  std::string deep = "<a><b><c>";
  for (int i = 0; i < 64; ++i) deep += "<d>";
  for (int i = 0; i < 64; ++i) deep += "</d>";
  deep += "</c></b></a>";
  auto verdicts = (*engine)->FilterXml(deep);
  ASSERT_TRUE(verdicts.ok());
  EXPECT_EQ(*verdicts, std::vector<bool>{true});
  EXPECT_GT((*engine)->observed_profile().max_depth, 16u);

  // Routing is sticky between maintenance points.
  auto mid = (*engine)->PlanOf("s");
  ASSERT_TRUE(mid.ok());
  EXPECT_EQ(mid->engine, "nfa");

  // Nothing is tombstoned, so this compaction is a pure re-route.
  const size_t rebuilds = (*engine)->automaton_rebuilds();
  ASSERT_TRUE((*engine)->CompactSubscriptions().ok());
  EXPECT_EQ((*engine)->automaton_rebuilds(), rebuilds + 1);
  auto after = (*engine)->PlanOf("s");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->engine, "frontier");

  // Re-routing changes the memory shape, never the answers.
  auto again = (*engine)->FilterXml(deep);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, std::vector<bool>{true});

  // With the ranking now stable, another compact is a no-op.
  ASSERT_TRUE((*engine)->CompactSubscriptions().ok());
  EXPECT_EQ((*engine)->automaton_rebuilds(), rebuilds + 1);
}

// --- admission control ---------------------------------------------

/// The predicted admission price of `query` on `engine_name` under the
/// engine's assumed (pre-document) profile — what Subscribe charges.
size_t PredictedPrice(const std::string& engine_name,
                      const std::string& query) {
  auto compiled = CompileQuery(query);
  EXPECT_TRUE(compiled.ok());
  DocumentProfile assumed;
  if (engine_name == "auto") {
    QueryPlan plan = PlanQuery(*compiled, assumed);
    const EnginePrediction* choice = plan.Choice();
    EXPECT_NE(choice, nullptr);
    return choice->cost.PredictedPeakBytes();
  }
  auto cost = EstimateEngineCost(*compiled, assumed, engine_name);
  EXPECT_TRUE(cost.ok());
  return cost->PredictedPeakBytes();
}

TEST(AdmissionTest, RejectsSubscriptionOverBudget) {
  const std::string query = "//m[h]/body";
  const size_t price = PredictedPrice("frontier", query);
  ASSERT_GT(price, 0u);

  EngineOptions options;
  options.engine = "frontier";
  options.memory_budget_bytes = price - 1;  // one byte short
  auto engine = Engine::Create(options);
  ASSERT_TRUE(engine.ok());
  Status status = (*engine)->Subscribe("s", query);
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted)
      << status.ToString();
  // A rejected Subscribe leaves the engine untouched.
  EXPECT_EQ((*engine)->NumSubscriptions(), 0u);
  EXPECT_EQ((*engine)->predicted_peak_bytes(), 0u);
  EXPECT_EQ((*engine)->admission_rejects(), 1u);
  EXPECT_EQ((*engine)->stats().admission_rejects().current(), 1u);

  // The same subscription under a sufficient budget is admitted and
  // charged.
  options.memory_budget_bytes = price;
  auto roomy = Engine::Create(options);
  ASSERT_TRUE(roomy.ok());
  EXPECT_TRUE((*roomy)->Subscribe("s", query).ok());
  EXPECT_EQ((*roomy)->predicted_peak_bytes(), price);
  EXPECT_EQ((*roomy)->stats().predicted_peak_bytes().current(), price);
}

TEST(AdmissionTest, DegradePolicyAdmitsAtEnd) {
  const std::string query = "//m[h]/body";
  EngineOptions options;
  options.engine = "frontier";
  options.memory_budget_bytes = 1;  // everything is over budget
  options.admission = AdmissionPolicy::kDegrade;
  auto engine = Engine::Create(options);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(
      (*engine)->Subscribe("s", query, DeliveryMode::kEarliest).ok());
  auto plan = (*engine)->PlanOf("s");
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->degraded);
  EXPECT_EQ((*engine)->admission_degrades(), 1u);
  // Degraded means late delivery, never wrong answers.
  auto verdicts = (*engine)->FilterEvents(GenerateDeepRecursionDocument(8));
  ASSERT_TRUE(verdicts.ok());
  EXPECT_EQ(*verdicts, std::vector<bool>{true});
}

TEST(AdmissionTest, DeduplicatedSubscriptionsAreFree) {
  const std::string query = "//m[h]/body";
  const size_t price = PredictedPrice("frontier", query);
  EngineOptions options;
  options.engine = "frontier";
  options.memory_budget_bytes = price;  // room for exactly one slot
  auto engine = Engine::Create(options);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->Subscribe("first", query).ok());
  // An equivalent query dedups onto the existing slot: no new
  // evaluation state, so admission waves it through at full budget.
  EXPECT_TRUE((*engine)->Subscribe("duplicate", query).ok());
  EXPECT_EQ((*engine)->num_eval_slots(), 1u);
  // A distinct query needs a new slot and is over budget.
  EXPECT_EQ((*engine)->Subscribe("distinct", "//m/body").code(),
            StatusCode::kResourceExhausted);
}

TEST(AdmissionTest, UnsubscribeReleasesTheBudget) {
  const std::string query = "//m[h]/body";
  const size_t price = PredictedPrice("frontier", query);
  EngineOptions options;
  options.engine = "frontier";
  options.memory_budget_bytes = price;
  auto engine = Engine::Create(options);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE((*engine)->Subscribe("first", query).ok());
  EXPECT_EQ((*engine)->Subscribe("second", "//m[h and body]").code(),
            StatusCode::kResourceExhausted);
  // Tombstoning the slot returns its charge; the rejected query now
  // fits (its own price is at most `price` under the same profile).
  ASSERT_TRUE((*engine)->Unsubscribe("first").ok());
  EXPECT_EQ((*engine)->predicted_peak_bytes(), 0u);
  EXPECT_TRUE((*engine)->Subscribe("second", "//m[h and body]").ok());
}

// Library/TCP parity: the same budget rejects the same subscription
// with the same status code through both front doors, and the quota
// counters surface in STATS.
TEST(AdmissionTest, TcpSubscribeParity) {
  const std::string admitted = "//m[h]/body";
  const std::string rejected = "//m[h and body]";
  const size_t price = PredictedPrice("frontier", admitted);

  // Library side.
  EngineOptions engineOptions;
  engineOptions.engine = "frontier";
  engineOptions.memory_budget_bytes = price;
  auto direct = Engine::Create(engineOptions);
  ASSERT_TRUE(direct.ok());
  Status libraryFirst = (*direct)->Subscribe("a", admitted);
  Status librarySecond = (*direct)->Subscribe("b", rejected);
  EXPECT_TRUE(libraryFirst.ok());
  EXPECT_EQ(librarySecond.code(), StatusCode::kResourceExhausted);

  // TCP side: the server-level quota flag overlays the same budget.
  ServerOptions serverOptions;
  serverOptions.engine.engine = "frontier";
  serverOptions.memory_budget_bytes = price;
  auto server = Server::Start(serverOptions);
  ASSERT_TRUE(server.ok());
  auto client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  auto wireFirst = (*client)->Subscribe(admitted);
  EXPECT_TRUE(wireFirst.ok()) << wireFirst.status().ToString();
  auto wireSecond = (*client)->Subscribe(rejected);
  ASSERT_FALSE(wireSecond.ok());
  EXPECT_EQ(wireSecond.status().code(), StatusCode::kResourceExhausted)
      << wireSecond.status().ToString();

  auto stats = (*client)->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("admission_rejects=1\n"), std::string::npos)
      << *stats;
  EXPECT_NE(stats->find("memory_budget_bytes=" + std::to_string(price)),
            std::string::npos)
      << *stats;
  EXPECT_NE(stats->find("predicted_peak_bytes="), std::string::npos);
}

// engine = "auto" over TCP: the daemon accepts the meta-engine and its
// verdict stream matches a direct auto engine fed the same document.
TEST(AdmissionTest, AutoEngineOverTcp) {
  ServerOptions serverOptions;
  serverOptions.engine.engine = "auto";
  auto server = Server::Start(serverOptions);
  ASSERT_TRUE(server.ok());
  auto client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  auto linear = (*client)->Subscribe("//m/body");
  ASSERT_TRUE(linear.ok());
  auto predicate = (*client)->Subscribe("//m[h]/body");
  ASSERT_TRUE(predicate.ok());

  const EventStream events = GenerateDeepRecursionDocument(8);
  auto xml = EventsToXml(events);
  ASSERT_TRUE(xml.ok());
  ASSERT_TRUE((*client)->Feed(*xml).ok());
  auto doc = (*client)->FinishDocument();
  ASSERT_TRUE(doc.ok());

  std::map<uint32_t, bool> wireVerdicts;
  for (const ClientEvent& event : (*client)->TakeEvents()) {
    if (event.kind != ClientEvent::Kind::kDocDone) continue;
    for (const auto& [sub, verdict] : event.verdicts) {
      wireVerdicts[sub] = verdict;
    }
  }
  ASSERT_EQ(wireVerdicts.size(), 2u);

  auto direct = Engine::Create("auto");
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE((*direct)->Subscribe("linear", "//m/body").ok());
  ASSERT_TRUE((*direct)->Subscribe("predicate", "//m[h]/body").ok());
  auto expected = (*direct)->FilterEvents(events);
  ASSERT_TRUE(expected.ok());
  EXPECT_EQ(wireVerdicts[*linear], (*expected)[0]);
  EXPECT_EQ(wireVerdicts[*predicate], (*expected)[1]);
}

}  // namespace
}  // namespace xpstream
