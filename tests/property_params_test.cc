// Parameterized property sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P):
// each suite states one paper invariant and checks it across a value
// range.

#include <gtest/gtest.h>

#include "analysis/fragment.h"
#include "analysis/frontier.h"
#include "analysis/matching.h"
#include "common/random.h"
#include "lowerbounds/fooling_depth.h"
#include "lowerbounds/fooling_frontier.h"
#include "lowerbounds/state_counter.h"
#include "stream/frontier_filter.h"
#include "workload/doc_generator.h"
#include "workload/query_generator.h"
#include "xml/parser.h"
#include "xml/tree_builder.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace xpstream {
namespace {

// --- Property: FS lower bound is met with equality by the engine over
// the frontier query family (Thms 7.1 + 8.8). ---------------------------

class FrontierFamilyProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(FrontierFamilyProperty, StatesEqualTwoToTheFS) {
  size_t k = GetParam();
  auto query = ParseQuery(FrontierFamilyQueryText(k));
  ASSERT_TRUE(query.ok());
  size_t fs = FrontierSize(**query);
  EXPECT_EQ(fs, k + 1);

  auto family = FrontierFoolingFamily::Build(query->get());
  ASSERT_TRUE(family.ok()) << family.status().ToString();
  ASSERT_EQ(family->size(), fs);

  auto filter = FrontierFilter::Create(query->get());
  ASSERT_TRUE(filter.ok());
  std::vector<EventStream> alphas;
  for (uint64_t t = 0; t < (1ULL << fs); ++t) {
    EventStream alpha;
    alpha.push_back(Event::StartDocument());
    EventStream a = family->Alpha(t);
    alpha.insert(alpha.end(), a.begin(), a.end());
    alphas.push_back(std::move(alpha));
  }
  auto count = CountStatesAtCut(filter->get(), alphas);
  ASSERT_TRUE(count.ok());
  // Lower bound: at least 2^FS states. Our engine achieves it exactly.
  EXPECT_EQ(count->distinct_states, 1ULL << fs);
  EXPECT_GE(count->InformationBits(), fs);
}

TEST_P(FrontierFamilyProperty, PeakTuplesTrackFS) {
  size_t k = GetParam();
  auto query = ParseQuery(FrontierFamilyQueryText(k));
  ASSERT_TRUE(query.ok());
  auto family = FrontierFoolingFamily::Build(query->get());
  ASSERT_TRUE(family.ok());
  auto filter = FrontierFilter::Create(query->get());
  ASSERT_TRUE(filter.ok());
  auto verdict = RunFilter(filter->get(), family->Document(0, 0));
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(*verdict);
  size_t fs = k + 1;
  // Thm 8.8 second part: FS tuples; our implementation adds the root
  // record (one extra).
  EXPECT_LE((*filter)->stats().table_entries().peak(), fs + 1);
}

INSTANTIATE_TEST_SUITE_P(KSweep, FrontierFamilyProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- Property: depth family forces exactly d states while the engine's
// table stays flat (Thms 7.14 + 8.8). ----------------------------------

class DepthFamilyProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(DepthFamilyProperty, StatesEqualDepth) {
  size_t d = GetParam();
  auto query = ParseQuery("/a/b");
  ASSERT_TRUE(query.ok());
  auto family = DepthFoolingFamily::Build(query->get());
  ASSERT_TRUE(family.ok());
  auto filter = FrontierFilter::Create(query->get());
  ASSERT_TRUE(filter.ok());
  std::vector<EventStream> alphas;
  for (size_t i = 0; i < d; ++i) alphas.push_back(family->AlphaI(i));
  auto count = CountStatesAtCut(filter->get(), alphas);
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->distinct_states, d);

  auto verdict = RunFilter(filter->get(), family->Document(d, d));
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(*verdict);
  EXPECT_LE((*filter)->stats().table_entries().peak(), 3u);
}

INSTANTIATE_TEST_SUITE_P(DepthSweep, DepthFamilyProperty,
                         ::testing::Values(2, 4, 8, 16, 64, 256));

// --- Property: Lemma 5.10 (matching ⇔ BOOLEVAL) per random seed. ------

class MatchingEquivalenceProperty
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MatchingEquivalenceProperty, MatchingIffBoolEval) {
  Random rng(GetParam());
  QueryGenOptions qopts;
  qopts.max_depth = 3;
  qopts.name_pool = 3;
  DocGenOptions dopts;
  dopts.max_depth = 5;
  dopts.name_pool = 3;
  for (int i = 0; i < 60; ++i) {
    auto query = GenerateRandomQuery(&rng, qopts);
    ASSERT_TRUE(query.ok());
    auto doc = GenerateRandomDocument(&rng, dopts);
    auto analyzer = MatchingAnalyzer::Create(query->get(), doc.get());
    if (!analyzer.ok()) continue;
    EXPECT_EQ(analyzer->HasMatching(), BoolEval(**query, *doc))
        << (*query)->ToString();
    if (::testing::Test::HasFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MatchingEquivalenceProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// --- Property: canonical documents of redundancy-free queries have a
// unique matching (Lemma 6.15) per generated query. --------------------

class CanonicalUniquenessProperty
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CanonicalUniquenessProperty, ExactlyOneMatching) {
  Random rng(GetParam());
  QueryGenOptions qopts;
  qopts.max_depth = 3;
  qopts.distinct_names = true;
  qopts.value_predicate_prob = 0.5;
  for (int i = 0; i < 20; ++i) {
    auto query = GenerateRandomQuery(&rng, qopts);
    ASSERT_TRUE(query.ok());
    FragmentReport report = ClassifyQuery(**query);
    if (!report.redundancy_free) continue;
    auto canonical = BuildCanonicalDocument(**query);
    ASSERT_TRUE(canonical.ok()) << (*query)->ToString();
    EXPECT_TRUE(BoolEval(**query, *canonical->document))
        << (*query)->ToString();
    auto analyzer =
        MatchingAnalyzer::Create(query->get(), canonical->document.get());
    ASSERT_TRUE(analyzer.ok());
    EXPECT_EQ(analyzer->CountMatchings(), 1u) << (*query)->ToString();
    if (::testing::Test::HasFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CanonicalUniquenessProperty,
                         ::testing::Values(21, 22, 23, 24, 25, 26));

// --- Property: the streaming parser is chunking-invariant. -------------

class ParserChunkProperty : public ::testing::TestWithParam<size_t> {};

TEST_P(ParserChunkProperty, ChunkSizeDoesNotChangeEvents) {
  const std::string xml =
      "<feed><msg a=\"1\"><header><from>x&amp;y</from></header>"
      "<body>hello <b>world</b></body></msg><!--c--><msg/></feed>";
  auto whole = ParseXmlToEvents(xml);
  ASSERT_TRUE(whole.ok());
  size_t chunk = GetParam();
  EventStream events;
  CollectingSink sink(&events);
  XmlParser parser(&sink);
  for (size_t pos = 0; pos < xml.size(); pos += chunk) {
    ASSERT_TRUE(parser.Feed(xml.substr(pos, chunk)).ok());
  }
  ASSERT_TRUE(parser.Finish().ok());
  EXPECT_EQ(events, *whole);
}

INSTANTIATE_TEST_SUITE_P(ChunkSizes, ParserChunkProperty,
                         ::testing::Values(1, 2, 3, 5, 7, 16, 64, 1024));

// --- Property: engine agreement under every event-stream cut (the
// Lemma 3.7 protocol at every position). --------------------------------

class CutPointProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CutPointProperty, StateCarriesAcrossEveryCut) {
  Random rng(GetParam());
  QueryGenOptions qopts;
  qopts.max_depth = 3;
  qopts.name_pool = 3;
  DocGenOptions dopts;
  dopts.max_depth = 4;
  dopts.name_pool = 3;
  auto query = GenerateRandomQuery(&rng, qopts);
  ASSERT_TRUE(query.ok());
  auto filter = FrontierFilter::Create(query->get());
  if (!filter.ok()) GTEST_SKIP();
  auto doc = GenerateRandomDocument(&rng, dopts);
  EventStream events = doc->ToEvents();
  bool expected = BoolEval(**query, *doc);
  // Feeding the stream with an interruption at every position must give
  // the same verdict (the state is self-contained).
  for (size_t cut = 1; cut < events.size(); ++cut) {
    ASSERT_TRUE((*filter)->Reset().ok());
    for (size_t i = 0; i < events.size(); ++i) {
      ASSERT_TRUE((*filter)->OnEvent(events[i]).ok());
      if (i + 1 == cut) {
        // Serialize at the cut: must not disturb the run.
        (void)(*filter)->SerializeState();
      }
    }
    auto verdict = (*filter)->Matched();
    ASSERT_TRUE(verdict.ok());
    EXPECT_EQ(*verdict, expected) << "cut=" << cut;
    if (::testing::Test::HasFailure()) return;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CutPointProperty,
                         ::testing::Values(31, 32, 33, 34, 35));

}  // namespace
}  // namespace xpstream
