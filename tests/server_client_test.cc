// Loopback integration: a Server + blocking Client against the direct
// Engine facade. The acceptance contract: verdicts and sink callback
// sequences observed over TCP are bit-identical to a direct engine fed
// the same bytes — for every registered engine, at threads = 1/2/4 —
// and connection lifecycle edges (mid-document disconnects,
// subscribe/unsubscribe churn, shutdown with live connections) neither
// crash the service nor perturb later documents.
//
// Deliveries to one connection ride one TCP stream in outbox FIFO
// order, and the server queues a document's MATCH / DOC_DONE frames
// before the publisher's DOC_OK ack; when publisher == subscriber the
// full push sequence is therefore available deterministically after
// FinishDocument() + TakeEvents().

#include <gtest/gtest.h>

#include <unistd.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "common/random.h"
#include "workload/doc_generator.h"
#include "workload/query_generator.h"
#include "xml/writer.h"
#include "xpstream/server.h"
#include "xpstream/xpstream.h"

namespace xpstream {
namespace {

// Records the *interleaved* callback sequence (matches and document
// completions in arrival order), mirroring ClientEvent structure.
struct SequenceSink : ResultSink {
  struct Entry {
    bool is_match;
    size_t slot = 0;
    size_t doc = 0;
    size_t ordinal = 0;
    std::vector<bool> verdicts;
  };
  std::vector<Entry> entries;

  void OnMatch(size_t slot, size_t doc, size_t ordinal) override {
    entries.push_back({true, slot, doc, ordinal, {}});
  }
  void OnDocumentDone(size_t doc,
                      const std::vector<bool>& verdicts) override {
    entries.push_back({false, 0, doc, 0, verdicts});
  }
};

std::vector<std::string> GeneratedQueries(size_t count, uint64_t seed) {
  Random rng(seed);
  std::vector<std::string> queries;
  for (size_t i = 0; i < count; ++i) {
    auto query = GenerateLinearQuery(&rng, 1 + rng.Uniform(5), 0.35, 0.15, 4);
    EXPECT_TRUE(query.ok());
    queries.push_back((*query)->ToString());
  }
  return queries;
}

std::vector<std::string> XmlCorpus(size_t docs, uint64_t seed) {
  Random rng(seed);
  DocGenOptions options;
  options.max_depth = 6;
  options.name_pool = 4;
  options.names = {"s0", "s1", "s2", "s3"};
  std::vector<std::string> corpus;
  for (size_t i = 0; i < docs; ++i) {
    auto doc = GenerateRandomDocument(&rng, options);
    auto xml = DocumentToXml(*doc);
    EXPECT_TRUE(xml.ok());
    corpus.push_back(*xml);
  }
  return corpus;
}

// Feeds one document in chunks of `chunk` bytes (0 = one shot).
void FeedChunked(Client* client, const std::string& xml, size_t chunk) {
  if (chunk == 0 || chunk >= xml.size()) {
    ASSERT_TRUE(client->Feed(xml).ok());
    return;
  }
  for (size_t offset = 0; offset < xml.size(); offset += chunk) {
    ASSERT_TRUE(
        client->Feed(std::string_view(xml).substr(offset, chunk)).ok());
  }
}

// The tentpole contract: Client-over-TCP sees exactly what a direct
// ResultSink sees — same subscriptions (mixed delivery modes), same
// bytes, all five engines, threads 1/2/4, varying chunk sizes.
TEST(ServerClientTest, ParityWithDirectEngineAllEnginesAllThreadCounts) {
  const std::vector<std::string> queries = GeneratedQueries(13, 20260807);
  const std::vector<std::string> corpus = XmlCorpus(6, 19);
  const size_t chunk_sizes[] = {0, 1, 17};

  for (const std::string& name : Engine::AvailableEngines()) {
    for (size_t threads : {1u, 2u, 4u}) {
      ServerOptions options;
      options.engine.engine = name;
      options.engine.threads = threads;
      auto server = Server::Start(options);
      ASSERT_TRUE(server.ok()) << name << " threads=" << threads;
      auto client = Client::Connect("127.0.0.1", (*server)->port());
      ASSERT_TRUE(client.ok()) << name;

      EngineOptions direct_options = options.engine;
      direct_options.max_element_depth = options.max_element_depth;
      auto direct = Engine::Create(direct_options);
      ASSERT_TRUE(direct.ok()) << name;
      SequenceSink sink;
      (*direct)->SetSink(&sink);

      std::vector<uint32_t> wire_ids;  // index = direct engine slot
      for (size_t q = 0; q < queries.size(); ++q) {
        const DeliveryMode mode = q % 3 == 0 ? DeliveryMode::kAtEnd
                                             : DeliveryMode::kEarliest;
        auto id = (*client)->Subscribe(queries[q], mode);
        ASSERT_TRUE(id.ok()) << name << " " << queries[q];
        wire_ids.push_back(*id);
        ASSERT_TRUE(
            (*direct)
                ->Subscribe("q" + std::to_string(q), queries[q], mode)
                .ok())
            << name;
      }

      for (size_t d = 0; d < corpus.size(); ++d) {
        FeedChunked(client->get(), corpus[d], chunk_sizes[d % 3]);
        auto doc_index = (*client)->FinishDocument();
        ASSERT_TRUE(doc_index.ok()) << name << " doc " << d;
        EXPECT_EQ(*doc_index, d);
        ASSERT_TRUE((*direct)->FilterXml(corpus[d]).ok()) << name;
      }

      const std::vector<ClientEvent> events = (*client)->TakeEvents();
      ASSERT_EQ(events.size(), sink.entries.size())
          << name << " threads=" << threads;
      for (size_t i = 0; i < events.size(); ++i) {
        const ClientEvent& got = events[i];
        const SequenceSink::Entry& want = sink.entries[i];
        ASSERT_EQ(got.kind == ClientEvent::Kind::kMatch, want.is_match)
            << name << " event " << i;
        EXPECT_EQ(got.doc, want.doc) << name << " event " << i;
        if (want.is_match) {
          EXPECT_EQ(got.sub_id, wire_ids[want.slot]) << name << " event " << i;
          EXPECT_EQ(got.ordinal, want.ordinal) << name << " event " << i;
        } else {
          ASSERT_EQ(got.verdicts.size(), want.verdicts.size()) << name;
          for (size_t v = 0; v < want.verdicts.size(); ++v) {
            EXPECT_EQ(got.verdicts[v].first, wire_ids[v]) << name;
            EXPECT_EQ(got.verdicts[v].second, want.verdicts[v]) << name;
          }
        }
      }
      (*server)->Stop();
    }
  }
}

// Subscribe/unsubscribe churn between documents: the server mirrors
// the engine's slot compaction, so verdict frames keep naming live
// wire ids correctly after arbitrary removals.
TEST(ServerClientTest, SubscribeUnsubscribeChurnParity) {
  const std::vector<std::string> queries = GeneratedQueries(9, 424242);
  const std::vector<std::string> corpus = XmlCorpus(4, 77);

  ServerOptions options;
  options.engine.engine = "nfa";
  auto server = Server::Start(options);
  ASSERT_TRUE(server.ok());
  auto client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());

  EngineOptions direct_options = options.engine;
  direct_options.max_element_depth = options.max_element_depth;
  auto direct = Engine::Create(direct_options);
  ASSERT_TRUE(direct.ok());
  SequenceSink sink;
  (*direct)->SetSink(&sink);

  // Live wire ids, in engine subscription order (both engines erase
  // with identical shift-down semantics).
  std::vector<uint32_t> live;
  auto subscribe = [&](const std::string& query) {
    auto id = (*client)->Subscribe(query, DeliveryMode::kEarliest);
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE((*direct)
                    ->Subscribe(std::to_string(*id), query,
                                DeliveryMode::kEarliest)
                    .ok());
    live.push_back(*id);
  };
  auto unsubscribe_at = [&](size_t index) {
    const uint32_t id = live[index];
    ASSERT_TRUE((*client)->Unsubscribe(id).ok());
    ASSERT_TRUE((*direct)->Unsubscribe(std::to_string(id)).ok());
    live.erase(live.begin() + static_cast<ptrdiff_t>(index));
  };
  auto feed_both = [&](const std::string& xml) {
    ASSERT_TRUE((*client)->Feed(xml).ok());
    ASSERT_TRUE((*client)->FinishDocument().ok());
    ASSERT_TRUE((*direct)->FilterXml(xml).ok());
  };

  for (size_t q = 0; q < 6; ++q) subscribe(queries[q]);
  feed_both(corpus[0]);
  unsubscribe_at(1);
  unsubscribe_at(3);
  feed_both(corpus[1]);
  subscribe(queries[6]);
  subscribe(queries[7]);
  unsubscribe_at(0);
  feed_both(corpus[2]);
  ASSERT_TRUE((*client)->Compact().ok());
  ASSERT_TRUE((*direct)->CompactSubscriptions().ok());
  subscribe(queries[8]);
  feed_both(corpus[3]);

  // Unknown and already-removed ids are rejected without side effects.
  EXPECT_FALSE((*client)->Unsubscribe(9999).ok());

  const std::vector<ClientEvent> events = (*client)->TakeEvents();
  ASSERT_EQ(events.size(), sink.entries.size());
  size_t checked_docdones = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    const ClientEvent& got = events[i];
    const SequenceSink::Entry& want = sink.entries[i];
    ASSERT_EQ(got.kind == ClientEvent::Kind::kMatch, want.is_match)
        << "event " << i;
    EXPECT_EQ(got.doc, want.doc);
    if (!want.is_match) {
      ASSERT_EQ(got.verdicts.size(), want.verdicts.size()) << "event " << i;
      for (size_t v = 0; v < want.verdicts.size(); ++v) {
        EXPECT_EQ(got.verdicts[v].second, want.verdicts[v]) << "event " << i;
      }
      ++checked_docdones;
    }
  }
  EXPECT_EQ(checked_docdones, 4u);
}

// Polls STATS until `key` reaches `want` (the loop thread observes a
// disconnect asynchronously); fails the test on timeout.
void AwaitStat(Client* client, const std::string& key, uint64_t want) {
  const std::string needle = key + "=" + std::to_string(want) + "\n";
  for (int attempt = 0; attempt < 200; ++attempt) {
    auto stats = client->Stats();
    ASSERT_TRUE(stats.ok());
    if (stats->find(needle) != std::string::npos) return;
    usleep(10 * 1000);
  }
  FAIL() << "stat never reached " << needle;
}

// A publisher dying mid-document must not wedge the service: the
// partial document is aborted and the next publisher starts clean.
TEST(ServerClientTest, PublisherDisconnectMidDocumentAbortsCleanly) {
  ServerOptions options;
  options.engine.engine = "frontier";
  auto server = Server::Start(options);
  ASSERT_TRUE(server.ok());

  auto survivor = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(survivor.ok());
  auto sub = (*survivor)->Subscribe("//b", DeliveryMode::kEarliest);
  ASSERT_TRUE(sub.ok());

  {
    auto publisher = Client::Connect("127.0.0.1", (*server)->port());
    ASSERT_TRUE(publisher.ok());
    ASSERT_TRUE((*publisher)->Feed("<a><b>half-open").ok());
    // A STATS round trip guarantees the server has processed the chunk
    // (per-connection FIFO) before anything else happens.
    ASSERT_TRUE((*publisher)->Stats().ok());
    // While another connection's document is in flight, a second
    // publisher is refused. DOC_CHUNK itself is unacked — the latched
    // error surfaces at the DOC_END the client waits on.
    ASSERT_TRUE((*survivor)->Feed("<x/>").ok());
    EXPECT_FALSE((*survivor)->FinishDocument().ok());
  }  // ...until the publisher drops mid-document.

  AwaitStat(survivor->get(), "connections", 1);
  ASSERT_TRUE((*survivor)->Feed("<a><b/></a>").ok());
  auto doc = (*survivor)->FinishDocument();
  ASSERT_TRUE(doc.ok());
  // The aborted partial document was never completed, so the survivor's
  // document is index 0.
  EXPECT_EQ(*doc, 0u);
  const std::vector<ClientEvent> events = (*survivor)->TakeEvents();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, ClientEvent::Kind::kMatch);
  EXPECT_EQ(events[0].sub_id, *sub);
  EXPECT_EQ(events[1].kind, ClientEvent::Kind::kDocDone);
}

// A subscriber dying while another connection's document is mid-flight:
// its subscriptions detach immediately (no delivery to a dead socket)
// and leave the engine at the document boundary — the publisher's
// document completes undisturbed.
TEST(ServerClientTest, SubscriberDisconnectMidDocumentDefersUnsubscribe) {
  ServerOptions options;
  options.engine.engine = "nfa";
  auto server = Server::Start(options);
  ASSERT_TRUE(server.ok());

  auto publisher = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(publisher.ok());
  auto own = (*publisher)->Subscribe("//keep", DeliveryMode::kAtEnd);
  ASSERT_TRUE(own.ok());

  {
    auto subscriber = Client::Connect("127.0.0.1", (*server)->port());
    ASSERT_TRUE(subscriber.ok());
    ASSERT_TRUE(
        (*subscriber)->Subscribe("//b", DeliveryMode::kEarliest).ok());
    AwaitStat(publisher->get(), "subscriptions", 2);
    ASSERT_TRUE((*publisher)->Feed("<a><b/><keep>").ok());
    // Ensure the chunk was processed (document open) before the
    // subscriber's socket closes.
    ASSERT_TRUE((*publisher)->Stats().ok());
  }  // subscriber gone; document still open

  // The engine bars removal mid-document, so the subscription count
  // stays at 2 until the boundary; the disconnect is only detachment.
  AwaitStat(publisher->get(), "connections", 1);
  auto mid = (*publisher)->Stats();
  ASSERT_TRUE(mid.ok());
  EXPECT_NE(mid->find("subscriptions=2\n"), std::string::npos) << *mid;
  ASSERT_TRUE((*publisher)->Feed("</keep></a>").ok());
  auto doc = (*publisher)->FinishDocument();
  ASSERT_TRUE(doc.ok());
  AwaitStat(publisher->get(), "subscriptions", 1);

  // Only the publisher's own subscription is delivered.
  const std::vector<ClientEvent> events = (*publisher)->TakeEvents();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, ClientEvent::Kind::kMatch);
  EXPECT_EQ(events[0].sub_id, *own);
  ASSERT_EQ(events[1].verdicts.size(), 1u);
  EXPECT_EQ(events[1].verdicts[0].first, *own);
  EXPECT_TRUE(events[1].verdicts[0].second);

  // The detached subscription is fully gone: its id is not reused, and
  // the next document matches only live subscriptions.
  ASSERT_TRUE((*publisher)->Feed("<a><b/></a>").ok());
  ASSERT_TRUE((*publisher)->FinishDocument().ok());
  const std::vector<ClientEvent> tail = (*publisher)->TakeEvents();
  ASSERT_EQ(tail.size(), 1u);  // DOC_DONE only; //b no longer subscribed
  EXPECT_EQ(tail[0].kind, ClientEvent::Kind::kDocDone);
}

// Stop() with live, mid-conversation connections: the loop drains and
// joins, clients see EOF on their next read, nothing crashes, and
// Stop() is idempotent. (This is the TSan-sensitive path: Stop races
// the loop thread's poll cycle.)
TEST(ServerClientTest, CleanShutdownWithLiveConnections) {
  ServerOptions options;
  options.engine.engine = "lazy_dfa";
  auto server = Server::Start(options);
  ASSERT_TRUE(server.ok());

  std::vector<std::unique_ptr<Client>> clients;
  for (int i = 0; i < 3; ++i) {
    auto client = Client::Connect("127.0.0.1", (*server)->port());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE((*client)->Subscribe("//a").ok());
    clients.push_back(std::move(client).value());
  }
  // One of them even has a document half-streamed.
  ASSERT_TRUE(clients[0]->Feed("<open><a>").ok());

  (*server)->Stop();
  (*server)->Stop();  // idempotent

  for (auto& client : clients) {
    auto stats = client->Stats();
    EXPECT_FALSE(stats.ok());
  }

  // The process can start a fresh server immediately afterwards.
  auto again = Server::Start(options);
  ASSERT_TRUE(again.ok());
  auto client = Client::Connect("127.0.0.1", (*again)->port());
  ASSERT_TRUE(client.ok());
  EXPECT_TRUE((*client)->Subscribe("//a").ok());
}

// Destroying a Server (not just Stop()) with clients attached must
// also be clean — the destructor path is what most callers rely on.
TEST(ServerClientTest, DestructorShutsDown) {
  std::unique_ptr<Client> orphan;
  {
    ServerOptions options;
    auto server = Server::Start(options);
    ASSERT_TRUE(server.ok());
    auto client = Client::Connect("127.0.0.1", (*server)->port());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE((*client)->Subscribe("//x").ok());
    orphan = std::move(client).value();
  }
  EXPECT_FALSE(orphan->Stats().ok());
}

// STATS surfaces the engine identity and counters a dashboard needs.
TEST(ServerClientTest, StatsReportEngineAndCounters) {
  ServerOptions options;
  options.engine.engine = "nfa_index";
  auto server = Server::Start(options);
  ASSERT_TRUE(server.ok());
  auto client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Subscribe("//a").ok());
  ASSERT_TRUE((*client)->Subscribe("//a").ok());  // dedup shares a slot
  ASSERT_TRUE((*client)->Feed("<a/>").ok());
  ASSERT_TRUE((*client)->FinishDocument().ok());

  auto stats = (*client)->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_NE(stats->find("engine=nfa_index\n"), std::string::npos) << *stats;
  EXPECT_NE(stats->find("documents_seen=1\n"), std::string::npos) << *stats;
  EXPECT_NE(stats->find("subscriptions=2\n"), std::string::npos) << *stats;
  EXPECT_NE(stats->find("eval_slots=1\n"), std::string::npos) << *stats;
  EXPECT_NE(stats->find("connections=1\n"), std::string::npos) << *stats;
  EXPECT_NE(stats->find("dropped_frames=0\n"), std::string::npos) << *stats;
  // The zero-copy parse gauges: arena high-water mark and cumulative
  // parse throughput (nonzero once a document has been fed).
  EXPECT_NE(stats->find("arena_bytes="), std::string::npos) << *stats;
  const size_t mbps = stats->find("parse_mb_per_s=");
  ASSERT_NE(mbps, std::string::npos) << *stats;
  EXPECT_EQ(stats->find("parse_mb_per_s=0.00\n"), std::string::npos)
      << *stats;
}

// Backpressure is shedding, not stalling: a subscriber that never
// reads cannot block the document stream. With a tiny outbox and a
// shrunken kernel send buffer, pushes to it are dropped and counted;
// the publisher's throughput is unaffected and the slow subscriber's
// connection survives to read the drop counter afterwards.
TEST(ServerClientTest, SlowSubscriberShedsFramesInsteadOfStalling) {
  ServerOptions options;
  options.engine.engine = "nfa";
  options.outbox_frames = 4;
  options.so_sndbuf = 4096;
  auto server = Server::Start(options);
  ASSERT_TRUE(server.ok());

  auto slow = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(slow.ok());
  // Many duplicate subscriptions multiply the per-document push volume
  // (each gets its own MATCH frame and DOC_DONE entry).
  for (int i = 0; i < 128; ++i) {
    ASSERT_TRUE((*slow)->Subscribe("//x", DeliveryMode::kEarliest).ok());
  }

  auto publisher = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(publisher.ok());
  for (int d = 0; d < 300; ++d) {
    ASSERT_TRUE((*publisher)->Feed("<x/>").ok());
    ASSERT_TRUE((*publisher)->FinishDocument().ok()) << "doc " << d;
  }

  // The slow client now drains everything that did make it through and
  // asks for its own drop counter.
  auto stats = (*slow)->Stats();
  ASSERT_TRUE(stats.ok());
  const size_t at = stats->find("dropped_frames=");
  ASSERT_NE(at, std::string::npos) << *stats;
  const uint64_t dropped =
      std::stoull(stats->substr(at + std::string("dropped_frames=").size()));
  EXPECT_GT(dropped, 0u) << *stats;
  // Shedding did not corrupt the stream: the frames that were delivered
  // decode cleanly.
  const std::vector<ClientEvent> events = (*slow)->TakeEvents();
  for (const ClientEvent& event : events) {
    if (event.kind == ClientEvent::Kind::kMatch) {
      EXPECT_GE(event.sub_id, 1u);
      EXPECT_LE(event.sub_id, 128u);
    }
  }
  // The publisher side never saw backpressure as an error.
  auto publisher_stats = (*publisher)->Stats();
  ASSERT_TRUE(publisher_stats.ok());
  EXPECT_NE(publisher_stats->find("documents_seen=300\n"), std::string::npos);
}

}  // namespace
}  // namespace xpstream
