// Hostile-input hardening of xpstreamd: framing violations (oversize,
// zero-length, unknown-type, truncated and garbage frames) get a clean
// per-connection ERROR frame and a close — never a crash, never any
// effect on other connections — and the resource caps
// (max_document_bytes, max_element_depth) fail the offending document
// while the connection and the engine stay healthy.
//
// These tests speak the wire protocol by hand through raw sockets
// (bypassing the Client, which only emits well-formed frames) and
// decode responses with the same wire:: helpers the server uses.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "server/wire.h"
#include "xpstream/server.h"
#include "xpstream/xpstream.h"

namespace xpstream {
namespace {

using wire::FrameType;

/// A raw TCP connection with a receive timeout; reads one frame at a
/// time with the library decoder.
class RawConn {
 public:
  /// `rcvbuf > 0` shrinks SO_RCVBUF before connecting (it must be set
  /// pre-handshake to affect the advertised window).
  static RawConn Connect(uint16_t port, int rcvbuf = 0) {
    RawConn conn;
    conn.fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(conn.fd_, 0);
    timeval timeout{5, 0};
    ::setsockopt(conn.fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
    if (rcvbuf > 0) {
      ::setsockopt(conn.fd_, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof rcvbuf);
    }
    sockaddr_in address{};
    address.sin_family = AF_INET;
    address.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &address.sin_addr);
    EXPECT_EQ(::connect(conn.fd_, reinterpret_cast<sockaddr*>(&address),
                        sizeof address),
              0);
    return conn;
  }

  ~RawConn() { Close(); }
  RawConn(RawConn&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  RawConn(const RawConn&) = delete;
  RawConn& operator=(const RawConn&) = delete;

  void Close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

  void Send(std::string_view bytes) {
    size_t sent = 0;
    while (sent < bytes.size()) {
      const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                               MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      sent += static_cast<size_t>(n);
    }
  }

  /// Next complete frame, or nullopt on EOF/timeout/undecodable bytes.
  std::optional<wire::Frame> ReadFrame() {
    while (true) {
      auto frame = decoder_.Next();
      if (!frame.ok()) return std::nullopt;
      if (frame->has_value()) return **frame;
      char buffer[4096];
      const ssize_t n = ::recv(fd_, buffer, sizeof buffer, 0);
      if (n <= 0) return std::nullopt;
      decoder_.Append(std::string_view(buffer, static_cast<size_t>(n)));
    }
  }

  /// True when the server closed its end (EOF within the timeout).
  bool ReadEof() {
    while (true) {
      char buffer[4096];
      const ssize_t n = ::recv(fd_, buffer, sizeof buffer, 0);
      if (n == 0) return true;
      if (n < 0) return false;  // timeout: still open
    }
  }

 private:
  RawConn() = default;
  int fd_ = -1;
  // Generous local limit: we must be able to *decode* whatever the
  // server sends even when testing the server's much smaller cap.
  wire::FrameDecoder decoder_{1u << 24};
};

/// Expects exactly: one ERROR frame carrying `code`, then EOF.
void ExpectErrorThenClose(RawConn* conn, StatusCode code) {
  auto frame = conn->ReadFrame();
  ASSERT_TRUE(frame.has_value()) << "no ERROR frame before close";
  ASSERT_EQ(frame->type, FrameType::kError);
  const Status status = wire::DecodeError(frame->payload);
  EXPECT_EQ(status.code(), code) << status.ToString();
  EXPECT_TRUE(conn->ReadEof());
}

/// The "other connections unaffected" probe: a healthy client doing a
/// full subscribe/feed/verdict round trip. Written to hold against a
/// pipelined server too: the verdict arrives after the DOC_OK ack (so
/// wait for it explicitly), and a fresh subscription may also receive
/// DOC_DONE frames of older documents still queued when it registered
/// (dispatch-time population snapshot) — assert only on our document.
void ExpectServiceHealthy(uint16_t port) {
  auto client = Client::Connect("127.0.0.1", port);
  ASSERT_TRUE(client.ok());
  auto sub = (*client)->Subscribe("//b", DeliveryMode::kEarliest);
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE((*client)->Feed("<a><b/></a>").ok());
  auto doc = (*client)->FinishDocument();
  ASSERT_TRUE(doc.ok());
  ASSERT_TRUE((*client)->WaitDocDone(*doc).ok());
  std::vector<ClientEvent> events;
  for (const ClientEvent& event : (*client)->TakeEvents()) {
    if (event.doc == *doc) events.push_back(event);
  }
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, ClientEvent::Kind::kMatch);
  EXPECT_EQ(events[1].kind, ClientEvent::Kind::kDocDone);
  ASSERT_TRUE((*client)->Unsubscribe(*sub).ok());
}

ServerOptions SmallLimits() {
  ServerOptions options;
  options.engine.engine = "nfa";
  options.max_frame_bytes = 1024;
  options.max_document_bytes = 4096;
  return options;
}

TEST(ServerHardeningTest, OversizeFrameDeclarationClosesThatConnectionOnly) {
  auto server = Server::Start(SmallLimits());
  ASSERT_TRUE(server.ok());

  // An established victim connection with live state on the server.
  auto victim = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(victim.ok());
  ASSERT_TRUE((*victim)->Subscribe("//b").ok());

  RawConn hostile = RawConn::Connect((*server)->port());
  std::string header;
  wire::AppendU32(&header, 100'000);  // declares 100 KB > 1 KB cap
  hostile.Send(header);
  ExpectErrorThenClose(&hostile, StatusCode::kInvalidArgument);

  // The victim's subscription and the service are untouched.
  ASSERT_TRUE((*victim)->Feed("<a><b/></a>").ok());
  ASSERT_TRUE((*victim)->FinishDocument().ok());
  // kAtEnd match delivered at the boundary + the DOC_DONE verdicts.
  EXPECT_EQ((*victim)->TakeEvents().size(), 2u);
  ExpectServiceHealthy((*server)->port());
}

TEST(ServerHardeningTest, ZeroLengthFrameIsAFramingError) {
  auto server = Server::Start(SmallLimits());
  ASSERT_TRUE(server.ok());
  RawConn hostile = RawConn::Connect((*server)->port());
  std::string header;
  wire::AppendU32(&header, 0);  // no room for even the type byte
  hostile.Send(header);
  ExpectErrorThenClose(&hostile, StatusCode::kInvalidArgument);
  ExpectServiceHealthy((*server)->port());
}

TEST(ServerHardeningTest, UnknownFrameTypeClosesConnection) {
  auto server = Server::Start(SmallLimits());
  ASSERT_TRUE(server.ok());
  RawConn hostile = RawConn::Connect((*server)->port());
  hostile.Send(wire::EncodeFrame(static_cast<FrameType>(0x7F), "junk"));
  ExpectErrorThenClose(&hostile, StatusCode::kInvalidArgument);
  ExpectServiceHealthy((*server)->port());
}

TEST(ServerHardeningTest, ClientMayNotSendServerFrameTypes) {
  auto server = Server::Start(SmallLimits());
  ASSERT_TRUE(server.ok());
  RawConn hostile = RawConn::Connect((*server)->port());
  hostile.Send(wire::EncodeMatch(1, 2, 3));  // a push, from the wrong side
  ExpectErrorThenClose(&hostile, StatusCode::kInvalidArgument);
  ExpectServiceHealthy((*server)->port());
}

TEST(ServerHardeningTest, MalformedPayloadsCloseConnection) {
  auto server = Server::Start(SmallLimits());
  ASSERT_TRUE(server.ok());
  {
    // SUBSCRIBE with no mode byte.
    RawConn hostile = RawConn::Connect((*server)->port());
    hostile.Send(wire::EncodeFrame(FrameType::kSubscribe, ""));
    ExpectErrorThenClose(&hostile, StatusCode::kInvalidArgument);
  }
  {
    // SUBSCRIBE with an out-of-range delivery mode.
    RawConn hostile = RawConn::Connect((*server)->port());
    std::string payload;
    wire::AppendU8(&payload, 9);
    payload.append("//a");
    hostile.Send(wire::EncodeFrame(FrameType::kSubscribe, payload));
    ExpectErrorThenClose(&hostile, StatusCode::kInvalidArgument);
  }
  {
    // UNSUBSCRIBE with a short id field.
    RawConn hostile = RawConn::Connect((*server)->port());
    hostile.Send(wire::EncodeFrame(FrameType::kUnsubscribe, "\x01"));
    ExpectErrorThenClose(&hostile, StatusCode::kInvalidArgument);
  }
  {
    // DOC_END carrying unexpected payload bytes.
    RawConn hostile = RawConn::Connect((*server)->port());
    hostile.Send(wire::EncodeFrame(FrameType::kDocEnd, "x"));
    ExpectErrorThenClose(&hostile, StatusCode::kInvalidArgument);
  }
  ExpectServiceHealthy((*server)->port());
}

TEST(ServerHardeningTest, GarbageBytesAreRejected) {
  auto server = Server::Start(SmallLimits());
  ASSERT_TRUE(server.ok());
  RawConn hostile = RawConn::Connect((*server)->port());
  // "GET " as a big-endian length is ~1.2 GB — instant framing error;
  // an accidental HTTP client cannot make the server buffer anything.
  hostile.Send("GET / HTTP/1.1\r\nHost: x\r\n\r\n");
  ExpectErrorThenClose(&hostile, StatusCode::kInvalidArgument);
  ExpectServiceHealthy((*server)->port());
}

TEST(ServerHardeningTest, TruncatedFrameThenDisconnectLeavesNoResidue) {
  auto server = Server::Start(SmallLimits());
  ASSERT_TRUE(server.ok());
  {
    RawConn hostile = RawConn::Connect((*server)->port());
    // A valid header promising 512 bytes, then silence and a close.
    std::string header;
    wire::AppendU32(&header, 512);
    wire::AppendU8(&header, 0x01);
    hostile.Send(header);
  }  // disconnect with the frame incomplete
  {
    // Half a SUBSCRIBE that never completes, then a hard close.
    RawConn hostile = RawConn::Connect((*server)->port());
    hostile.Send(std::string("\x00\x00", 2));
  }
  ExpectServiceHealthy((*server)->port());
}

TEST(ServerHardeningTest, DocumentByteCapAbortsDocumentNotConnection) {
  auto server = Server::Start(SmallLimits());  // max_document_bytes = 4096
  ASSERT_TRUE(server.ok());
  auto client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Subscribe("//b").ok());

  // 8 KB of well-formed XML, streamed in frame-sized chunks so the
  // document cap — not the frame cap, not the parser — is what trips.
  std::string big = "<a>";
  while (big.size() < 8192) big += "<b>filler</b>";
  big += "</a>";
  for (size_t offset = 0; offset < big.size(); offset += 512) {
    ASSERT_TRUE(
        (*client)->Feed(std::string_view(big).substr(offset, 512)).ok());
  }
  auto oversized = (*client)->FinishDocument();
  ASSERT_FALSE(oversized.ok());
  EXPECT_EQ(oversized.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(oversized.status().message().find("max_document_bytes"),
            std::string::npos)
      << oversized.status().ToString();

  // Same connection, next document: accepted, and the aborted one was
  // never counted.
  ASSERT_TRUE((*client)->Feed("<a><b/></a>").ok());
  auto good = (*client)->FinishDocument();
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 0u);
}

TEST(ServerHardeningTest, ElementDepthCapMatchesDirectEngine) {
  ServerOptions options;
  options.engine.engine = "frontier";
  options.max_element_depth = 4;
  auto server = Server::Start(options);
  ASSERT_TRUE(server.ok());
  auto client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Subscribe("//d").ok());

  EngineOptions direct_options = options.engine;
  direct_options.max_element_depth = 4;
  auto direct = Engine::Create(direct_options);
  ASSERT_TRUE(direct.ok());
  ASSERT_TRUE((*direct)->Subscribe("q", "//d").ok());

  const std::string at_cap = "<a><b><c><d/></c></b></a>";          // depth 4
  const std::string over_cap = "<a><b><c><d><e/></d></c></b></a>";  // depth 5

  ASSERT_TRUE((*client)->Feed(at_cap).ok());
  EXPECT_TRUE((*client)->FinishDocument().ok());
  EXPECT_TRUE((*direct)->FilterXml(at_cap).ok());

  ASSERT_TRUE((*client)->Feed(over_cap).ok());
  auto over_tcp = (*client)->FinishDocument();
  auto over_direct = (*direct)->FilterXml(over_cap);
  ASSERT_FALSE(over_tcp.ok());
  ASSERT_FALSE(over_direct.ok());
  EXPECT_EQ(over_tcp.status().code(), StatusCode::kNotWellFormed);
  EXPECT_EQ(over_direct.status().code(), over_tcp.status().code());

  // Both sides recover for the next well-formed document.
  ASSERT_TRUE((*client)->Feed(at_cap).ok());
  EXPECT_TRUE((*client)->FinishDocument().ok());
  EXPECT_TRUE((*direct)->FilterXml(at_cap).ok());
}

TEST(ServerHardeningTest, MalformedXmlFailsDocumentNotConnection) {
  auto server = Server::Start(SmallLimits());
  ASSERT_TRUE(server.ok());
  auto client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Subscribe("//b").ok());

  // Mismatched close tag: the parse error is latched chunk-side and
  // surfaces at DOC_END; later chunks of the doomed document are
  // discarded without confusing the engine.
  ASSERT_TRUE((*client)->Feed("<a><b></a>").ok());
  ASSERT_TRUE((*client)->Feed("more bytes after the error").ok());
  auto bad = (*client)->FinishDocument();
  ASSERT_FALSE(bad.ok());

  ASSERT_TRUE((*client)->Feed("<a><b/></a>").ok());
  auto good = (*client)->FinishDocument();
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 0u);
  ExpectServiceHealthy((*server)->port());
}

// A document spending more decoded entity/charref bytes than
// max_entity_expansion_bytes allows is failed cleanly — ERROR at
// DOC_END, connection and service intact — in the serial and the
// pipelined ingestion model alike.
TEST(ServerHardeningTest, EntityExpansionCapFailsDocumentNotConnection) {
  for (size_t workers : {size_t{1}, size_t{4}}) {
    ServerOptions options;
    options.engine.engine = "frontier";
    options.max_entity_expansion_bytes = 8;
    options.pipeline_workers = workers;
    auto server = Server::Start(options);
    ASSERT_TRUE(server.ok()) << "workers=" << workers;
    auto client = Client::Connect("127.0.0.1", (*server)->port());
    ASSERT_TRUE(client.ok());
    ASSERT_TRUE((*client)->Subscribe("//a").ok());

    std::string hostile = "<a>";
    for (int i = 0; i < 64; ++i) hostile += "&#65;";
    hostile += "</a>";
    ASSERT_TRUE((*client)->Feed(hostile).ok());
    auto bad = (*client)->FinishDocument();
    ASSERT_FALSE(bad.ok()) << "workers=" << workers;

    // The connection survives and the next document is index 0: the
    // hostile one was aborted before ever counting.
    ASSERT_TRUE((*client)->Feed("<a/>").ok());
    auto good = (*client)->FinishDocument();
    ASSERT_TRUE(good.ok()) << "workers=" << workers;
    EXPECT_EQ(*good, 0u);
    ExpectServiceHealthy((*server)->port());
  }
}

// The server runs embedded here (no daemon, so no SIG_IGN on SIGPIPE):
// pushing frames to a subscriber that vanished must surface as EPIPE
// inside the server, never as a process-killing SIGPIPE.
TEST(ServerHardeningTest, DisconnectWithQueuedPushesDoesNotRaiseSigpipe) {
  // Tiny kernel buffers on both ends, so MATCH frames pile up in the
  // session outbox instead of vanishing into TCP.
  ServerOptions options;
  options.engine.engine = "nfa";
  options.so_sndbuf = 4096;
  auto server = Server::Start(options);
  ASSERT_TRUE(server.ok());

  // A raw-socket subscriber with kEarliest delivery that never reads
  // its pushes.
  RawConn subscriber = RawConn::Connect((*server)->port(), /*rcvbuf=*/4096);
  std::string payload;
  wire::AppendU8(&payload, 1);  // kEarliest
  payload.append("//b");
  subscriber.Send(wire::EncodeFrame(FrameType::kSubscribe, payload));
  auto ack = subscriber.ReadFrame();
  ASSERT_TRUE(ack.has_value());
  ASSERT_EQ(ack->type, FrameType::kSubscribeOk);

  // Thousands of matches: the flush fills both kernel buffers, hits
  // EAGAIN and leaves the rest queued in the outbox.
  auto publisher = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(publisher.ok());
  std::string doc = "<a>";
  for (int i = 0; i < 2000; ++i) doc += "<b/>";
  doc += "</a>";
  ASSERT_TRUE((*publisher)->Feed(doc).ok());
  ASSERT_TRUE((*publisher)->FinishDocument().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));

  // Abrupt close with unread data in the receive buffer sends an RST
  // immediately. The next flush writes to the reset socket — the
  // textbook raise-SIGPIPE condition; MSG_NOSIGNAL keeps it an EPIPE
  // on that session only.
  subscriber.Close();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE((*publisher)->Feed("<a><b/></a>").ok());
  ASSERT_TRUE((*publisher)->FinishDocument().ok());
  ExpectServiceHealthy((*server)->port());
}

// The mirror-image hazard in the blocking Client: after the server is
// gone, the first failed request consumes the socket's pending error
// (ECONNRESET) and every later request writes to a dead socket — the
// write-after-RST that raises SIGPIPE without MSG_NOSIGNAL, killing
// the embedding process (test runner, bench, example).
TEST(ServerHardeningTest, ClientRequestsAfterServerGoneFailWithoutSigpipe) {
  auto server = Server::Start(SmallLimits());
  ASSERT_TRUE(server.ok());
  auto client = Client::Connect("127.0.0.1", (*server)->port(),
                                /*recv_timeout_ms=*/2000);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE((*client)->Subscribe("//a").ok());

  (*server)->Stop();
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE((*client)->Subscribe("//a").ok());
  }
}

TEST(ServerHardeningTest, ConnectionCapClosesExcessConnections) {
  ServerOptions options = SmallLimits();
  options.max_connections = 2;
  auto server = Server::Start(options);
  ASSERT_TRUE(server.ok());

  // Round-trip on both admitted connections first, so the server has
  // demonstrably accepted them before the third one arrives.
  auto first = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE((*first)->Subscribe("//a").ok());
  auto second = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE((*second)->Subscribe("//a").ok());

  // The connection over the cap is refused by an immediate close.
  RawConn excess = RawConn::Connect((*server)->port());
  EXPECT_TRUE(excess.ReadEof());

  // Admitted connections are untouched, and a freed slot is reusable
  // (the reap of the closed connection is asynchronous: retry).
  ASSERT_TRUE((*first)->Feed("<a/>").ok());
  ASSERT_TRUE((*first)->FinishDocument().ok());
  second.value().reset();
  bool readmitted = false;
  for (int attempt = 0; attempt < 100 && !readmitted; ++attempt) {
    auto next = Client::Connect("127.0.0.1", (*server)->port());
    readmitted = next.ok() && (*next)->Subscribe("//a").ok();
    if (!readmitted) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  EXPECT_TRUE(readmitted);
}

TEST(ServerHardeningTest, IdleConnectionIsReaped) {
  ServerOptions options = SmallLimits();
  options.idle_timeout_ms = 500;
  auto server = Server::Start(options);
  ASSERT_TRUE(server.ok());

  // Connect, send nothing, read: the server closes the connection
  // once it has been idle past the timeout (EOF well before the 5 s
  // receive timeout), freeing its fd and session state.
  RawConn idle = RawConn::Connect((*server)->port());
  EXPECT_TRUE(idle.ReadEof());
  ExpectServiceHealthy((*server)->port());
}

// Semantic errors must not tear the connection down: bad XPath, bad
// unsubscribe, DOC_END without a document.
TEST(ServerHardeningTest, SemanticErrorsKeepConnectionAlive) {
  auto server = Server::Start(SmallLimits());
  ASSERT_TRUE(server.ok());
  auto client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());

  EXPECT_FALSE((*client)->Subscribe("//[[[not xpath").ok());
  EXPECT_FALSE((*client)->Unsubscribe(12345).ok());
  EXPECT_FALSE((*client)->FinishDocument().ok());  // no document open

  // All three rejections later, the connection still works end-to-end.
  auto sub = (*client)->Subscribe("//b", DeliveryMode::kEarliest);
  ASSERT_TRUE(sub.ok());
  ASSERT_TRUE((*client)->Feed("<a><b/></a>").ok());
  EXPECT_TRUE((*client)->FinishDocument().ok());
  EXPECT_EQ((*client)->TakeEvents().size(), 2u);
}

}  // namespace
}  // namespace xpstream
