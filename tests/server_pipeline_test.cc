// Pipelined ingestion over TCP (ServerOptions::pipeline_workers >= 2):
// K concurrent publisher connections stream documents through the
// EnginePool behind xpstreamd, and every completed document's verdicts
// and MATCH sequence — grouped by the pool-assigned document index the
// DOC_OK ack carries — are bit-identical to a serial Engine fed the
// same bytes, for every registered engine. Also under test: the
// per-connection in-flight model (two publishers mid-document at
// once), queue-full backpressure surfacing as a retryable
// kResourceExhausted at DOC_END, publisher death mid-document under
// load, and the pipeline STATS keys.
//
// The worker count honors XPSTREAM_PIPELINE_WORKERS (CI's TSan job
// re-runs this binary at several widths); defaults to 4.

#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/random.h"
#include "workload/doc_generator.h"
#include "workload/query_generator.h"
#include "xml/writer.h"
#include "xpstream/server.h"
#include "xpstream/xpstream.h"

namespace xpstream {
namespace {

size_t PipelineWorkersFromEnv() {
  const char* env = std::getenv("XPSTREAM_PIPELINE_WORKERS");
  if (env != nullptr) {
    const int parsed = std::atoi(env);
    if (parsed >= 2) return static_cast<size_t>(parsed);
  }
  return 4;
}

std::vector<std::string> GeneratedQueries(size_t count, uint64_t seed) {
  Random rng(seed);
  std::vector<std::string> queries;
  for (size_t i = 0; i < count; ++i) {
    auto query = GenerateLinearQuery(&rng, 1 + rng.Uniform(5), 0.35, 0.15, 4);
    EXPECT_TRUE(query.ok());
    queries.push_back((*query)->ToString());
  }
  return queries;
}

std::vector<std::string> XmlCorpus(size_t docs, uint64_t seed) {
  Random rng(seed);
  DocGenOptions options;
  options.max_depth = 6;
  options.name_pool = 4;
  options.names = {"s0", "s1", "s2", "s3"};
  std::vector<std::string> corpus;
  for (size_t i = 0; i < docs; ++i) {
    auto doc = GenerateRandomDocument(&rng, options);
    auto xml = DocumentToXml(*doc);
    EXPECT_TRUE(xml.ok());
    corpus.push_back(*xml);
  }
  return corpus;
}

DeliveryMode ModeOf(size_t q) {
  return q % 3 == 0 ? DeliveryMode::kAtEnd : DeliveryMode::kEarliest;
}

void FeedChunked(Client* client, const std::string& xml, size_t chunk) {
  if (chunk == 0 || chunk >= xml.size()) {
    ASSERT_TRUE(client->Feed(xml).ok());
    return;
  }
  for (size_t offset = 0; offset < xml.size(); offset += chunk) {
    ASSERT_TRUE(
        client->Feed(std::string_view(xml).substr(offset, chunk)).ok());
  }
}

// Polls STATS until `key` reaches `want`; fails the test on timeout.
void AwaitStat(Client* client, const std::string& key, uint64_t want) {
  const std::string needle = key + "=" + std::to_string(want) + "\n";
  for (int attempt = 0; attempt < 200; ++attempt) {
    auto stats = client->Stats();
    ASSERT_TRUE(stats.ok());
    if (stats->find(needle) != std::string::npos) return;
    usleep(10 * 1000);
  }
  FAIL() << "stat never reached " << needle;
}

struct DocExpected {
  std::vector<std::pair<size_t, size_t>> matches;  // (sub, ordinal)
  std::vector<bool> verdicts;
};

struct MatchRecorder : ResultSink {
  std::vector<std::pair<size_t, size_t>> matches;
  void OnMatch(size_t sub, size_t, size_t ordinal) override {
    matches.emplace_back(sub, ordinal);
  }
};

// The tentpole acceptance: K = 4 concurrent publishers through a
// pipelined server produce, per document, exactly the serial engine's
// results — all five engines, mixed delivery modes, varied chunking.
TEST(ServerPipelineTest, ConcurrentPublishersParityAllEngines) {
  const std::vector<std::string> queries = GeneratedQueries(9, 20260808);
  const std::vector<std::string> corpus = XmlCorpus(8, 33);
  constexpr size_t kPublishers = 4;
  constexpr size_t kRounds = 2;
  const size_t chunk_sizes[] = {0, 1, 17};

  for (const std::string& name : Engine::AvailableEngines()) {
    ServerOptions options;
    options.engine.engine = name;
    options.pipeline_workers = PipelineWorkersFromEnv();
    options.doc_queue_depth = 16;
    auto server = Server::Start(options);
    ASSERT_TRUE(server.ok()) << name;

    auto subscriber = Client::Connect("127.0.0.1", (*server)->port());
    ASSERT_TRUE(subscriber.ok()) << name;
    std::vector<uint32_t> wire_ids;
    for (size_t q = 0; q < queries.size(); ++q) {
      auto id = (*subscriber)->Subscribe(queries[q], ModeOf(q));
      ASSERT_TRUE(id.ok()) << name << " " << queries[q];
      wire_ids.push_back(*id);
    }

    // Serial reference: one direct engine, same overlays the server
    // applies, same subscriptions in the same order.
    EngineOptions direct_options = options.engine;
    direct_options.max_element_depth = options.max_element_depth;
    direct_options.max_entity_expansion_bytes =
        options.max_entity_expansion_bytes;
    auto direct = Engine::Create(direct_options);
    ASSERT_TRUE(direct.ok()) << name;
    MatchRecorder recorder;
    (*direct)->SetSink(&recorder);
    for (size_t q = 0; q < queries.size(); ++q) {
      ASSERT_TRUE((*direct)
                      ->Subscribe("q" + std::to_string(q), queries[q],
                                  ModeOf(q))
                      .ok())
          << name;
    }
    std::vector<DocExpected> expected;
    for (const std::string& xml : corpus) {
      recorder.matches.clear();
      auto verdicts = (*direct)->FilterXml(xml);
      ASSERT_TRUE(verdicts.ok()) << name;
      expected.push_back({recorder.matches, *verdicts});
    }

    // K publishers, each its own connection, racing over the corpus.
    std::mutex map_mutex;
    std::map<uint64_t, size_t> corpus_of_doc;
    std::atomic<size_t> cursor{0};
    std::vector<std::thread> publishers;
    for (size_t t = 0; t < kPublishers; ++t) {
      publishers.emplace_back([&] {
        auto publisher = Client::Connect("127.0.0.1", (*server)->port());
        EXPECT_TRUE(publisher.ok());
        if (!publisher.ok()) return;
        while (true) {
          const size_t i = cursor.fetch_add(1);
          if (i >= corpus.size() * kRounds) break;
          const size_t ci = i % corpus.size();
          FeedChunked(publisher->get(), corpus[ci], chunk_sizes[ci % 3]);
          auto doc = (*publisher)->FinishDocument();
          EXPECT_TRUE(doc.ok()) << doc.status().ToString();
          if (!doc.ok()) return;
          std::lock_guard<std::mutex> lock(map_mutex);
          corpus_of_doc[*doc] = ci;
        }
      });
    }
    for (std::thread& thread : publishers) thread.join();
    ASSERT_EQ(corpus_of_doc.size(), corpus.size() * kRounds) << name;

    // Rendezvous with every document's asynchronous evaluation, then
    // compare per-document event groups. Within one document the
    // server preserves the engine's order (MATCHes, then DOC_DONE);
    // only the interleaving across documents is scheduling-dependent.
    for (const auto& [doc, ci] : corpus_of_doc) {
      ASSERT_TRUE((*subscriber)->WaitDocDone(doc).ok())
          << name << " doc " << doc;
    }
    std::map<uint64_t, std::vector<ClientEvent>> by_doc;
    for (ClientEvent& event : (*subscriber)->TakeEvents()) {
      by_doc[event.doc].push_back(std::move(event));
    }
    for (const auto& [doc, ci] : corpus_of_doc) {
      const std::vector<ClientEvent>& got = by_doc[doc];
      const DocExpected& want = expected[ci];
      ASSERT_EQ(got.size(), want.matches.size() + 1)
          << name << " doc " << doc;
      for (size_t m = 0; m < want.matches.size(); ++m) {
        ASSERT_EQ(got[m].kind, ClientEvent::Kind::kMatch)
            << name << " doc " << doc << " event " << m;
        EXPECT_EQ(got[m].sub_id, wire_ids[want.matches[m].first])
            << name << " doc " << doc << " event " << m;
        EXPECT_EQ(got[m].ordinal, want.matches[m].second)
            << name << " doc " << doc << " event " << m;
      }
      const ClientEvent& done = got.back();
      ASSERT_EQ(done.kind, ClientEvent::Kind::kDocDone) << name;
      ASSERT_EQ(done.verdicts.size(), want.verdicts.size()) << name;
      for (size_t v = 0; v < want.verdicts.size(); ++v) {
        EXPECT_EQ(done.verdicts[v].first, wire_ids[v]) << name;
        EXPECT_EQ(done.verdicts[v].second, want.verdicts[v])
            << name << " doc " << doc;
      }
    }

    auto stats = (*subscriber)->Stats();
    ASSERT_TRUE(stats.ok());
    EXPECT_NE(stats->find("pipeline_workers=" +
                          std::to_string(options.pipeline_workers) + "\n"),
              std::string::npos)
        << *stats;
    EXPECT_NE(stats->find("queue_depth=16\n"), std::string::npos) << *stats;
    EXPECT_NE(stats->find("queue_peak="), std::string::npos);
    EXPECT_NE(stats->find("docs_in_flight="), std::string::npos);
    EXPECT_NE(stats->find("queue_rejects="), std::string::npos);
    EXPECT_NE(stats->find("documents_seen=" +
                          std::to_string(corpus.size() * kRounds) + "\n"),
              std::string::npos)
        << *stats;
    (*server)->Stop();
  }
}

// In pipelined mode documents are per-connection in flight: two
// publishers interleave chunks of different documents and both
// complete — the exact situation the serial service refuses.
TEST(ServerPipelineTest, PublishersStreamConcurrentDocuments) {
  ServerOptions options;
  options.engine.engine = "frontier";
  options.pipeline_workers = PipelineWorkersFromEnv();
  auto server = Server::Start(options);
  ASSERT_TRUE(server.ok());

  auto subscriber = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(subscriber.ok());
  auto sub = (*subscriber)->Subscribe("//b", DeliveryMode::kAtEnd);
  ASSERT_TRUE(sub.ok());

  auto one = Client::Connect("127.0.0.1", (*server)->port());
  auto two = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(one.ok());
  ASSERT_TRUE(two.ok());

  ASSERT_TRUE((*one)->Feed("<a><b/>").ok());
  ASSERT_TRUE((*two)->Feed("<a>").ok());
  ASSERT_TRUE((*one)->Feed("</a>").ok());
  ASSERT_TRUE((*two)->Feed("<c/></a>").ok());
  auto first = (*one)->FinishDocument();
  auto second = (*two)->FinishDocument();
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_NE(*first, *second);

  ASSERT_TRUE((*subscriber)->WaitDocDone(*first).ok());
  ASSERT_TRUE((*subscriber)->WaitDocDone(*second).ok());
  std::map<uint64_t, bool> verdict_of_doc;
  for (const ClientEvent& event : (*subscriber)->TakeEvents()) {
    if (event.kind != ClientEvent::Kind::kDocDone) continue;
    ASSERT_EQ(event.verdicts.size(), 1u);
    verdict_of_doc[event.doc] = event.verdicts[0].second;
  }
  EXPECT_TRUE(verdict_of_doc[*first]);    // has a <b>
  EXPECT_FALSE(verdict_of_doc[*second]);  // does not
  (*server)->Stop();
}

// A DOC_END that finds the pool queue full is answered with a
// kResourceExhausted ERROR — the document is dropped, the connection
// survives, and re-feeding after a drain succeeds. A flood against a
// depth-1 queue with slow (naive, tree-building) evaluation exercises
// the retry loop; every document lands exactly once.
TEST(ServerPipelineTest, QueueFullBackpressureIsRetryable) {
  ServerOptions options;
  options.engine.engine = "naive";
  options.pipeline_workers = 2;
  options.doc_queue_depth = 1;
  auto server = Server::Start(options);
  ASSERT_TRUE(server.ok());

  auto subscriber = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(subscriber.ok());
  ASSERT_TRUE((*subscriber)->Subscribe("//b", DeliveryMode::kAtEnd).ok());

  // A biggish document so evaluation is slower than the wire.
  std::string xml = "<a>";
  for (int i = 0; i < 1500; ++i) xml += "<b>text</b>";
  xml += "</a>";

  auto publisher = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(publisher.ok());
  constexpr size_t kDocs = 10;
  std::vector<uint64_t> accepted;
  for (size_t d = 0; d < kDocs; ++d) {
    while (true) {
      ASSERT_TRUE((*publisher)->Feed(xml).ok());
      auto doc = (*publisher)->FinishDocument();
      if (doc.ok()) {
        accepted.push_back(*doc);
        break;
      }
      // The only acceptable failure is the backpressure signal; the
      // whole document is re-fed after a short drain.
      ASSERT_EQ(doc.status().code(), StatusCode::kResourceExhausted)
          << doc.status().ToString();
      usleep(2 * 1000);
    }
  }
  ASSERT_EQ(accepted.size(), kDocs);
  for (uint64_t doc : accepted) {
    ASSERT_TRUE((*subscriber)->WaitDocDone(doc).ok()) << "doc " << doc;
  }
  size_t done_frames = 0;
  for (const ClientEvent& event : (*subscriber)->TakeEvents()) {
    if (event.kind != ClientEvent::Kind::kDocDone) continue;
    ++done_frames;
    ASSERT_EQ(event.verdicts.size(), 1u);
    EXPECT_TRUE(event.verdicts[0].second);
  }
  EXPECT_EQ(done_frames, kDocs);
  AwaitStat(subscriber->get(), "documents_seen", kDocs);
  (*server)->Stop();
}

// A publisher dying mid-document while other publishers stream: its
// partial parse is discarded without ever reaching the pool, and
// concurrent traffic is undisturbed.
TEST(ServerPipelineTest, PublisherDeathMidDocumentLeavesServiceClean) {
  ServerOptions options;
  options.engine.engine = "frontier";
  options.pipeline_workers = PipelineWorkersFromEnv();
  auto server = Server::Start(options);
  ASSERT_TRUE(server.ok());

  auto subscriber = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(subscriber.ok());
  auto sub = (*subscriber)->Subscribe("//b", DeliveryMode::kEarliest);
  ASSERT_TRUE(sub.ok());

  auto steady = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(steady.ok());

  {
    auto doomed = Client::Connect("127.0.0.1", (*server)->port());
    ASSERT_TRUE(doomed.ok());
    ASSERT_TRUE((*doomed)->Feed("<a><b>half-open").ok());
    // The STATS round trip guarantees the chunk was parsed into the
    // connection's pending document before the socket drops.
    ASSERT_TRUE((*doomed)->Stats().ok());

    // The steady publisher completes a document while the doomed one
    // holds its own half-open — per-connection in-flight.
    ASSERT_TRUE((*steady)->Feed("<a><b/></a>").ok());
    auto during = (*steady)->FinishDocument();
    ASSERT_TRUE(during.ok());
    ASSERT_TRUE((*subscriber)->WaitDocDone(*during).ok());
  }  // doomed drops mid-document

  AwaitStat(subscriber->get(), "connections", 2);
  ASSERT_TRUE((*steady)->Feed("<a><b/></a>").ok());
  auto after = (*steady)->FinishDocument();
  ASSERT_TRUE(after.ok());
  ASSERT_TRUE((*subscriber)->WaitDocDone(*after).ok());

  // The doomed partial was never submitted: exactly the two steady
  // documents exist, each delivering its match.
  EXPECT_EQ(*after, 1u);
  size_t matches = 0;
  for (const ClientEvent& event : (*subscriber)->TakeEvents()) {
    if (event.kind != ClientEvent::Kind::kMatch) continue;
    ++matches;
    EXPECT_EQ(event.sub_id, *sub);
  }
  EXPECT_EQ(matches, 2u);
  AwaitStat(subscriber->get(), "documents_seen", 2);
  (*server)->Stop();
}

}  // namespace
}  // namespace xpstream
