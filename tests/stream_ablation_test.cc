#include <gtest/gtest.h>

#include "common/random.h"
#include "stream/frontier_filter.h"
#include "workload/doc_generator.h"
#include "workload/query_generator.h"
#include "xml/parser.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace xpstream {
namespace {

/// Runs the filter in the given pseudo-code mode.
Result<bool> RunMode(const Query* q, const EventStream& events,
                     bool literal) {
  auto f = FrontierFilter::Create(q);
  if (!f.ok()) return f.status();
  (*f)->SetLiteralPseudocodeMode(literal);
  return RunFilter(f->get(), events);
}

TEST(AblationTest, LiteralModeMatchesOnNonRecursiveDocuments) {
  // Without recursion, the assignment and OR semantics coincide.
  Random rng(111);
  DocGenOptions dopts;
  dopts.max_depth = 3;
  dopts.name_pool = 6;  // few name collisions -> low recursion
  QueryGenOptions qopts;
  qopts.max_depth = 3;
  qopts.name_pool = 6;
  qopts.descendant_prob = 0.0;
  for (int i = 0; i < 150; ++i) {
    auto query = GenerateRandomQuery(&rng, qopts);
    ASSERT_TRUE(query.ok());
    auto doc = GenerateRandomDocument(&rng, dopts);
    auto fixed = RunMode(query->get(), doc->ToEvents(), false);
    auto literal = RunMode(query->get(), doc->ToEvents(), true);
    if (!fixed.ok()) continue;
    ASSERT_TRUE(literal.ok());
    EXPECT_EQ(*fixed, *literal) << (*query)->ToString();
    if (::testing::Test::HasFailure()) return;
  }
}

TEST(AblationTest, LiteralModeErasesMatchUnderRecursion) {
  // The documented regression (DESIGN.md §5 fix 1): //a[b and c] on a
  // document where an inner a matches but the outer a does not. The
  // literal Fig. 21 line 28 overwrites the descendant-axis record's
  // matched bit with the outer (failing) verdict.
  auto q = ParseQuery("//a[b and c]");
  ASSERT_TRUE(q.ok());
  auto events = ParseXmlToEvents("<a><a><b/><c/></a></a>");
  ASSERT_TRUE(events.ok());
  auto fixed = RunMode(q->get(), events->events(), false);
  auto literal = RunMode(q->get(), events->events(), true);
  ASSERT_TRUE(fixed.ok() && literal.ok());
  EXPECT_TRUE(*fixed);     // ground truth: the inner a matches
  EXPECT_FALSE(*literal);  // the literal pseudo-code loses the match
}

TEST(AblationTest, FixedModeAlwaysAgreesWithGroundTruth) {
  // The companion claim: with the fixes, recursion-heavy fuzzing agrees
  // with BOOLEVAL while literal mode shows a measurable divergence rate.
  Random rng(222);
  DocGenOptions dopts;
  dopts.max_depth = 7;
  dopts.name_pool = 2;
  QueryGenOptions qopts;
  qopts.max_depth = 3;
  qopts.name_pool = 2;
  qopts.descendant_prob = 0.6;
  qopts.value_predicate_prob = 0.1;
  size_t literal_divergences = 0;
  size_t checked = 0;
  for (int i = 0; i < 300; ++i) {
    auto query = GenerateRandomQuery(&rng, qopts);
    ASSERT_TRUE(query.ok());
    auto doc = GenerateRandomDocument(&rng, dopts);
    bool expected = BoolEval(**query, *doc);
    auto fixed = RunMode(query->get(), doc->ToEvents(), false);
    auto literal = RunMode(query->get(), doc->ToEvents(), true);
    if (!fixed.ok()) continue;
    ++checked;
    EXPECT_EQ(*fixed, expected) << (*query)->ToString();
    ASSERT_TRUE(literal.ok());
    if (*literal != expected) ++literal_divergences;
    if (::testing::Test::HasFailure()) return;
  }
  EXPECT_GT(checked, 200u);
  EXPECT_GT(literal_divergences, 0u)
      << "expected the literal pseudo-code to diverge somewhere on a "
         "recursion-heavy workload";
}

}  // namespace
}  // namespace xpstream
