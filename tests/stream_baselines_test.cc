#include <gtest/gtest.h>

#include "common/random.h"
#include "stream/frontier_filter.h"
#include "stream/lazy_dfa_filter.h"
#include "stream/naive_filter.h"
#include "stream/nfa_filter.h"
#include "workload/doc_generator.h"
#include "workload/query_generator.h"
#include "xml/parser.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace xpstream {
namespace {

template <typename FilterT>
bool RunEngine(const std::string& query_text, const std::string& xml) {
  auto q = ParseQuery(query_text);
  EXPECT_TRUE(q.ok());
  auto f = FilterT::Create(q->get());
  EXPECT_TRUE(f.ok()) << f.status().ToString();
  auto events = ParseXmlToEvents(xml);
  EXPECT_TRUE(events.ok());
  auto verdict = RunFilter(f->get(), events->events());
  EXPECT_TRUE(verdict.ok()) << verdict.status().ToString();
  return verdict.ok() && *verdict;
}

TEST(NfaFilterTest, LinearQueries) {
  EXPECT_TRUE(RunEngine<NfaFilter>("/a/b", "<a><b/></a>"));
  EXPECT_FALSE(RunEngine<NfaFilter>("/a/b", "<a><x><b/></x></a>"));
  EXPECT_TRUE(RunEngine<NfaFilter>("//b", "<a><x><b/></x></a>"));
  EXPECT_TRUE(RunEngine<NfaFilter>("/a//b/c", "<a><x><b><c/></b></x></a>"));
  EXPECT_FALSE(RunEngine<NfaFilter>("/a//b/c", "<a><x><b><d/></b></x></a>"));
  EXPECT_TRUE(RunEngine<NfaFilter>("/a/*/c", "<a><q><c/></q></a>"));
  EXPECT_TRUE(RunEngine<NfaFilter>("//a//a", "<a><x><a/></x></a>"));
  EXPECT_FALSE(RunEngine<NfaFilter>("//a//a", "<a><x/></a>"));
}

TEST(NfaFilterTest, AttributeLastStep) {
  EXPECT_TRUE(RunEngine<NfaFilter>("/a/@id", "<a id=\"1\"/>"));
  EXPECT_FALSE(RunEngine<NfaFilter>("/a/@id", "<a><b id=\"1\"/></a>"));
  EXPECT_TRUE(RunEngine<NfaFilter>("//b/@k", "<a><b k=\"v\"/></a>"));
}

TEST(NfaFilterTest, RejectsTwigQueries) {
  auto q = ParseQuery("/a[b]");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(NfaFilter::Create(q->get()).ok());
}

TEST(NfaFilterTest, StackDepthTracksDocumentDepth) {
  auto q = ParseQuery("//a/b");
  ASSERT_TRUE(q.ok());
  auto f = NfaFilter::Create(q->get());
  ASSERT_TRUE(f.ok());
  std::string xml;
  for (int i = 0; i < 30; ++i) xml += "<a>";
  for (int i = 0; i < 30; ++i) xml += "</a>";
  auto events = ParseXmlToEvents(xml);
  ASSERT_TRUE(events.ok());
  ASSERT_TRUE(RunFilter(f->get(), events->events()).ok());
  EXPECT_GE((*f)->stats().table_entries().peak(), 30u);
}

TEST(LazyDfaFilterTest, AgreesOnBasics) {
  EXPECT_TRUE(RunEngine<LazyDfaFilter>("/a/b", "<a><b/></a>"));
  EXPECT_FALSE(RunEngine<LazyDfaFilter>("/a/b", "<a><x><b/></x></a>"));
  EXPECT_TRUE(RunEngine<LazyDfaFilter>("//a//b", "<a><q><b/></q></a>"));
  EXPECT_TRUE(RunEngine<LazyDfaFilter>("/a/*/c", "<a><q><c/></q></a>"));
}

TEST(LazyDfaFilterTest, TransitionTablePersistsAcrossDocuments) {
  auto q = ParseQuery("//a//b//c");
  ASSERT_TRUE(q.ok());
  auto f = LazyDfaFilter::Create(q->get());
  ASSERT_TRUE(f.ok());
  auto events = ParseXmlToEvents("<a><b><c/></b></a>");
  ASSERT_TRUE(events.ok());
  ASSERT_TRUE(RunFilter(f->get(), events->events()).ok());
  size_t states_after_first = (*f)->NumStates();
  EXPECT_GT(states_after_first, 1u);
  ASSERT_TRUE(RunFilter(f->get(), events->events()).ok());
  EXPECT_EQ((*f)->NumStates(), states_after_first);  // cached
}

TEST(LazyDfaFilterTest, EagerMaterializationBlowsUp) {
  // §1.2: determinizing queries mixing // with wildcards explodes the
  // table. The classic Green-et-al. shape //a/*^k forces the DFA to
  // remember which of the last k ancestors were named a: 2^k states.
  auto small = ParseQuery("//a/*/*/*");
  auto large = ParseQuery("//a/*/*/*/*/*/*/*/*");
  ASSERT_TRUE(small.ok() && large.ok());
  auto fs = LazyDfaFilter::Create(small->get());
  auto fl = LazyDfaFilter::Create(large->get());
  ASSERT_TRUE(fs.ok() && fl.ok());
  (*fs)->MaterializeFully();
  (*fl)->MaterializeFully();
  EXPECT_GT((*fl)->NumStates(), (*fs)->NumStates());
  EXPECT_GE((*fl)->NumStates(), 1u << 8);  // ≥ 2^k reachable subsets
}

TEST(NaiveFilterTest, FullFragment) {
  EXPECT_TRUE(RunEngine<NaiveTreeFilter>("/a[b or c]", "<a><c/></a>"));
  EXPECT_FALSE(RunEngine<NaiveTreeFilter>("/a[not(b)]", "<a><b/></a>"));
  EXPECT_TRUE(RunEngine<NaiveTreeFilter>("/a[b = c]", "<a><b>1</b><c>1</c></a>"));
}

TEST(NaiveFilterTest, BuffersWholeDocument) {
  auto q = ParseQuery("/a/b");
  ASSERT_TRUE(q.ok());
  auto f = NaiveTreeFilter::Create(q->get());
  ASSERT_TRUE(f.ok());
  std::string xml = "<a>";
  for (int i = 0; i < 100; ++i) xml += "<b>text</b>";
  xml += "</a>";
  auto events = ParseXmlToEvents(xml);
  ASSERT_TRUE(events.ok());
  ASSERT_TRUE(RunFilter(f->get(), events->events()).ok());
  EXPECT_GE((*f)->stats().table_entries().peak(), 300u);
}

TEST(BaselineDifferentialTest, NfaAndDfaAgreeWithGroundTruth) {
  Random rng(7007);
  DocGenOptions dopts;
  dopts.max_depth = 6;
  dopts.name_pool = 3;
  dopts.names = {"s0", "s1", "s2"};
  for (int i = 0; i < 250; ++i) {
    auto query = GenerateLinearQuery(&rng, 1 + rng.Uniform(5), 0.4, 0.2, 3);
    ASSERT_TRUE(query.ok());
    auto nfa = NfaFilter::Create(query->get());
    auto dfa = LazyDfaFilter::Create(query->get());
    ASSERT_TRUE(nfa.ok() && dfa.ok()) << (*query)->ToString();
    auto doc = GenerateRandomDocument(&rng, dopts);
    bool expected = BoolEval(**query, *doc);
    auto v1 = RunFilter(nfa->get(), doc->ToEvents());
    auto v2 = RunFilter(dfa->get(), doc->ToEvents());
    ASSERT_TRUE(v1.ok() && v2.ok());
    EXPECT_EQ(*v1, expected) << "NFA " << (*query)->ToString();
    EXPECT_EQ(*v2, expected) << "DFA " << (*query)->ToString();
    if (::testing::Test::HasFailure()) return;
  }
}

TEST(BaselineDifferentialTest, AllEnginesAgreeOnLinearQueries) {
  Random rng(8008);
  DocGenOptions dopts;
  dopts.max_depth = 5;
  dopts.name_pool = 3;
  dopts.names = {"s0", "s1", "s2"};
  for (int i = 0; i < 150; ++i) {
    auto query = GenerateLinearQuery(&rng, 1 + rng.Uniform(4), 0.4, 0.0, 3);
    ASSERT_TRUE(query.ok());
    auto frontier = FrontierFilter::Create(query->get());
    auto nfa = NfaFilter::Create(query->get());
    ASSERT_TRUE(frontier.ok() && nfa.ok());
    auto doc = GenerateRandomDocument(&rng, dopts);
    auto v1 = RunFilter(frontier->get(), doc->ToEvents());
    auto v2 = RunFilter(nfa->get(), doc->ToEvents());
    ASSERT_TRUE(v1.ok() && v2.ok());
    EXPECT_EQ(*v1, *v2) << (*query)->ToString();
    if (::testing::Test::HasFailure()) return;
  }
}

}  // namespace
}  // namespace xpstream
