#include <gtest/gtest.h>

#include "analysis/matching.h"
#include "common/random.h"
#include "stream/frontier_filter.h"
#include "stream/naive_filter.h"
#include "workload/doc_generator.h"
#include "workload/query_generator.h"
#include "xpath/evaluator.h"

namespace xpstream {
namespace {

/// The backbone correctness argument for the FrontierFilter: fuzz random
/// (query, document) pairs from the supported fragment and require exact
/// agreement with the ground-truth evaluator — including on recursive
/// documents, where the pseudo-code subtleties live.
void RunDifferential(uint64_t seed, int iterations, DocGenOptions dopts,
                     QueryGenOptions qopts) {
  Random rng(seed);
  size_t checked = 0;
  size_t skipped = 0;
  for (int i = 0; i < iterations; ++i) {
    auto query = GenerateRandomQuery(&rng, qopts);
    ASSERT_TRUE(query.ok()) << query.status().ToString();
    auto filter = FrontierFilter::Create(query->get());
    if (!filter.ok()) {
      ++skipped;  // outside the supported fragment (rare)
      continue;
    }
    auto doc = GenerateRandomDocument(&rng, dopts);
    bool expected = BoolEval(**query, *doc);
    auto verdict = RunFilter(filter->get(), doc->ToEvents());
    ASSERT_TRUE(verdict.ok()) << verdict.status().ToString();
    EXPECT_EQ(*verdict, expected)
        << "query: " << (*query)->ToString() << "\ndoc: "
        << EventStreamToString(doc->ToEvents());
    ++checked;
    if (::testing::Test::HasFailure()) return;
  }
  // The generator stays inside the fragment almost always.
  EXPECT_GT(checked, static_cast<size_t>(iterations) * 8 / 10)
      << "too many skips: " << skipped;
}

TEST(FrontierDifferentialTest, ShallowDocuments) {
  DocGenOptions dopts;
  dopts.max_depth = 3;
  QueryGenOptions qopts;
  qopts.max_depth = 3;
  RunDifferential(1001, 400, dopts, qopts);
}

TEST(FrontierDifferentialTest, DeepNarrowDocuments) {
  DocGenOptions dopts;
  dopts.max_depth = 9;
  dopts.max_fanout = 2;
  dopts.name_pool = 3;  // forces recursive name collisions
  QueryGenOptions qopts;
  qopts.max_depth = 4;
  qopts.name_pool = 3;
  qopts.descendant_prob = 0.5;
  RunDifferential(2002, 300, dopts, qopts);
}

TEST(FrontierDifferentialTest, HighlyRecursiveDocuments) {
  DocGenOptions dopts;
  dopts.max_depth = 7;
  dopts.max_fanout = 3;
  dopts.name_pool = 2;  // nearly every element shares a name
  QueryGenOptions qopts;
  qopts.max_depth = 3;
  qopts.name_pool = 2;
  qopts.descendant_prob = 0.6;
  qopts.value_predicate_prob = 0.2;
  RunDifferential(3003, 300, dopts, qopts);
}

TEST(FrontierDifferentialTest, ValueHeavyQueries) {
  DocGenOptions dopts;
  dopts.max_depth = 4;
  dopts.text_prob = 0.9;
  QueryGenOptions qopts;
  qopts.max_depth = 3;
  qopts.value_predicate_prob = 0.9;
  RunDifferential(4004, 300, dopts, qopts);
}

TEST(FrontierDifferentialTest, AgreesWithNaiveFilterOnEventStreams) {
  // Second oracle: the buffering NaiveTreeFilter (tree + evaluator).
  Random rng(5005);
  DocGenOptions dopts;
  QueryGenOptions qopts;
  for (int i = 0; i < 150; ++i) {
    auto query = GenerateRandomQuery(&rng, qopts);
    ASSERT_TRUE(query.ok());
    auto frontier = FrontierFilter::Create(query->get());
    if (!frontier.ok()) continue;
    auto naive = NaiveTreeFilter::Create(query->get());
    ASSERT_TRUE(naive.ok());
    auto doc = GenerateRandomDocument(&rng, dopts);
    EventStream events = doc->ToEvents();
    auto v1 = RunFilter(frontier->get(), events);
    auto v2 = RunFilter(naive->get(), events);
    ASSERT_TRUE(v1.ok() && v2.ok());
    EXPECT_EQ(*v1, *v2) << (*query)->ToString();
    if (::testing::Test::HasFailure()) return;
  }
}

TEST(FrontierDifferentialTest, MemoryBoundHolds) {
  // Thm 8.8: table entries <= |Q| * (path recursion depth + 1) on every
  // run (the +1 covers the root record).
  Random rng(6006);
  DocGenOptions dopts;
  dopts.max_depth = 6;
  dopts.name_pool = 3;
  QueryGenOptions qopts;
  qopts.max_depth = 3;
  qopts.name_pool = 3;
  for (int i = 0; i < 100; ++i) {
    auto query = GenerateRandomQuery(&rng, qopts);
    ASSERT_TRUE(query.ok());
    auto filter = FrontierFilter::Create(query->get());
    if (!filter.ok()) continue;
    auto doc = GenerateRandomDocument(&rng, dopts);
    ASSERT_TRUE(RunFilter(filter->get(), doc->ToEvents()).ok());
    size_t bound = (*query)->size() * (PathRecursionDepth(**query, *doc) + 1);
    EXPECT_LE((*filter)->stats().table_entries().peak(), bound)
        << (*query)->ToString();
    if (::testing::Test::HasFailure()) return;
  }
}

}  // namespace
}  // namespace xpstream
