#include <gtest/gtest.h>

#include "stream/frontier_filter.h"
#include "xml/parser.h"
#include "xpath/parser.h"

namespace xpstream {
namespace {

struct Runner {
  std::unique_ptr<Query> query;
  std::unique_ptr<FrontierFilter> filter;
};

Runner Make(const std::string& text) {
  Runner r;
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  r.query = std::move(q).value();
  auto f = FrontierFilter::Create(r.query.get());
  EXPECT_TRUE(f.ok()) << f.status().ToString();
  r.filter = std::move(f).value();
  return r;
}

bool Filter(const std::string& query_text, const std::string& xml) {
  Runner r = Make(query_text);
  auto events = ParseXmlToEvents(xml);
  EXPECT_TRUE(events.ok()) << events.status().ToString();
  auto verdict = RunFilter(r.filter.get(), events->events());
  EXPECT_TRUE(verdict.ok()) << verdict.status().ToString();
  return verdict.ok() && *verdict;
}

TEST(FrontierFilterTest, SimplePaths) {
  EXPECT_TRUE(Filter("/a/b", "<a><b/></a>"));
  EXPECT_FALSE(Filter("/a/b", "<a><c/></a>"));
  EXPECT_FALSE(Filter("/a/b", "<a><x><b/></x></a>"));
  EXPECT_TRUE(Filter("/a//b", "<a><x><b/></x></a>"));
  EXPECT_TRUE(Filter("//b", "<a><x><b/></x></a>"));
  EXPECT_FALSE(Filter("//b", "<a><x/></a>"));
}

TEST(FrontierFilterTest, Predicates) {
  EXPECT_TRUE(Filter("/a[b and c]", "<a><b/><c/></a>"));
  EXPECT_FALSE(Filter("/a[b and c]", "<a><b/></a>"));
  EXPECT_TRUE(Filter("/a[b > 5]", "<a><b>6</b></a>"));
  EXPECT_FALSE(Filter("/a[b > 5]", "<a><b>5</b></a>"));
  EXPECT_TRUE(Filter("/a[b = \"xy\"]", "<a><b>xy</b></a>"));
  EXPECT_TRUE(Filter("/a[contains(b, \"ell\")]", "<a><b>hello</b></a>"));
  EXPECT_FALSE(Filter("/a[contains(b, \"zz\")]", "<a><b>hello</b></a>"));
}

TEST(FrontierFilterTest, PaperTheorem42Documents) {
  const char* q = "/a[c[.//e and f] and b > 5]";
  EXPECT_TRUE(Filter(q, "<a><c><e/><f/></c><b>6</b></a>"));
  EXPECT_TRUE(Filter(q, "<a><b>6</b><c><f/><e/></c></a>"));
  EXPECT_FALSE(Filter(q, "<a><b>6</b><c><f/><f/></c></a>"));
  EXPECT_FALSE(Filter(q, "<a><c><e/><f/></c><b>5</b></a>"));
}

TEST(FrontierFilterTest, RecursiveDocuments) {
  EXPECT_TRUE(Filter("//a[b and c]", "<a><b/><a/><c/></a>"));
  EXPECT_TRUE(Filter("//a[b and c]", "<a><b/><a><b/><a/><c/></a></a>"));
  EXPECT_FALSE(Filter("//a[b and c]", "<a><b/><a><c/></a></a>"));
  // The contamination regression from the design notes: //a[.//a and c]
  // on <a><a><c/></a></a> must NOT match (outer lacks c, inner lacks a).
  EXPECT_FALSE(Filter("//a[.//a and c]", "<a><a><c/></a></a>"));
  EXPECT_TRUE(Filter("//a[.//a and c]", "<a><a/><c/></a>"));
}

TEST(FrontierFilterTest, DescendantLeafUnderRecursion) {
  EXPECT_TRUE(Filter("//a[.//b]", "<a><a><b/></a></a>"));
  EXPECT_TRUE(Filter("/a[.//b > 3]", "<a><x><b>4</b></x></a>"));
  EXPECT_FALSE(Filter("/a[.//b > 3]", "<a><x><b>2</b></x></a>"));
  // Nested value captures for one descendant-axis leaf.
  EXPECT_TRUE(Filter("/a[.//b = 7]", "<a><b>1<b>7</b></b></a>"));
  EXPECT_TRUE(Filter("/a[.//b = 17]", "<a><b>1<b>7</b></b></a>"));
}

TEST(FrontierFilterTest, WildcardSteps) {
  EXPECT_TRUE(Filter("/a/*/c", "<a><b><c/></b></a>"));
  EXPECT_FALSE(Filter("/a/*/c", "<a><c/></a>"));
  EXPECT_TRUE(Filter("/a[*/b > 5]", "<a><x><b>7</b></x></a>"));
}

TEST(FrontierFilterTest, Attributes) {
  EXPECT_TRUE(Filter("/a/@id", "<a id=\"1\"/>"));
  EXPECT_FALSE(Filter("/a/@id", "<a x=\"1\"/>"));
  EXPECT_TRUE(Filter("/a[@id = 7]/b", "<a id=\"7\"><b/></a>"));
  EXPECT_FALSE(Filter("/a[@id = 7]/b", "<a id=\"8\"><b/></a>"));
  EXPECT_TRUE(Filter("//b[@k = \"v\"]", "<a><b k=\"v\"/></a>"));
}

TEST(FrontierFilterTest, StringValueSpansSubtree) {
  EXPECT_TRUE(Filter("/a[b = 17]", "<a><b>1<x>7</x></b></a>"));
  EXPECT_FALSE(Filter("/a[b = 1]", "<a><b>1<x>7</x></b></a>"));
}

TEST(FrontierFilterTest, SiblingRetry) {
  // A failing first candidate must not block a later sibling match.
  EXPECT_TRUE(Filter("/a/b[c]", "<a><b/><b><c/></b></a>"));
  EXPECT_TRUE(Filter("/a[b > 5]", "<a><b>1</b><b>9</b></a>"));
  EXPECT_TRUE(Filter("/a[b[c and d]]",
                     "<a><b><c/></b><b><c/><d/></b></a>"));
}

TEST(FrontierFilterTest, Fig22Example) {
  // Paper Fig. 22: query /a[c[.//e and f] and b] on the depicted
  // document; the run matches, and the frontier never exceeds 3 records
  // beyond the root bookkeeping.
  Runner r = Make("/a[c[.//e and f] and b]");
  auto events =
      ParseXmlToEvents("<a><c><d><e/></d><f/></c><c/><b/></a>");
  ASSERT_TRUE(events.ok());
  r.filter->EnableTrace();
  auto verdict = RunFilter(r.filter.get(), events->events());
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(*verdict);
  EXPECT_FALSE(r.filter->trace().empty());
  // FS(Q) = 3; the table additionally holds the root record and, while
  // the a-element is open, its expanded children — peak stays <= 5.
  EXPECT_LE(r.filter->stats().table_entries().peak(), 5u);
}

TEST(FrontierFilterTest, UnsupportedQueriesRejected) {
  auto q1 = ParseQuery("/a[b or c]");
  ASSERT_TRUE(q1.ok());
  EXPECT_FALSE(FrontierFilter::Create(q1->get()).ok());
  auto q2 = ParseQuery("/a[b = c]");
  ASSERT_TRUE(q2.ok());
  EXPECT_FALSE(FrontierFilter::Create(q2->get()).ok());
  auto q3 = ParseQuery("/a[not(b)]");
  ASSERT_TRUE(q3.ok());
  EXPECT_FALSE(FrontierFilter::Create(q3->get()).ok());
}

TEST(FrontierFilterTest, MemoryIndependentOfDocumentWidth) {
  // Streaming over many non-matching siblings must not grow the table.
  Runner r = Make("/a[b > 100]");
  std::string xml = "<a>";
  for (int i = 0; i < 200; ++i) xml += "<b>1</b>";
  xml += "</a>";
  auto events = ParseXmlToEvents(xml);
  ASSERT_TRUE(events.ok());
  auto verdict = RunFilter(r.filter.get(), events->events());
  ASSERT_TRUE(verdict.ok());
  EXPECT_FALSE(*verdict);
  EXPECT_LE(r.filter->stats().table_entries().peak(), 3u);
}

TEST(FrontierFilterTest, MemoryGrowsWithRecursionDepth) {
  // Thm 8.8: table size is O(|Q| * r). Nested candidate a's each keep
  // their children records live.
  Runner r = Make("//a[b and c]");
  for (size_t depth : {2u, 8u, 32u}) {
    std::string xml;
    for (size_t i = 0; i < depth; ++i) xml += "<a>";
    for (size_t i = 0; i < depth; ++i) xml += "</a>";
    auto events = ParseXmlToEvents(xml);
    ASSERT_TRUE(events.ok());
    ASSERT_TRUE(RunFilter(r.filter.get(), events->events()).ok());
    size_t peak = r.filter->stats().table_entries().peak();
    EXPECT_GE(peak, depth);      // ~2 records per open candidate + a
    EXPECT_LE(peak, 3 * depth + 3);
  }
}

TEST(FrontierFilterTest, BufferClearedBetweenValues) {
  Runner r = Make("/a[b = \"x\" and c = \"y\"]");
  auto events = ParseXmlToEvents("<a><b>x</b><c>y</c></a>");
  ASSERT_TRUE(events.ok());
  auto verdict = RunFilter(r.filter.get(), events->events());
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(*verdict);
  // Peak buffer is one value at a time, not the concatenation.
  EXPECT_LE(r.filter->stats().buffered_bytes().peak(), 1u);
}

TEST(FrontierFilterTest, ReusableAcrossDocuments) {
  Runner r = Make("/a[b]");
  for (const char* xml : {"<a><b/></a>", "<a><c/></a>", "<a><b/></a>"}) {
    auto events = ParseXmlToEvents(xml);
    ASSERT_TRUE(events.ok());
    auto verdict = RunFilter(r.filter.get(), events->events());
    ASSERT_TRUE(verdict.ok());
    EXPECT_EQ(*verdict, std::string(xml).find("<b/>") != std::string::npos);
  }
}

TEST(FrontierFilterTest, SerializeStateChangesWithInformation) {
  Runner r = Make("/a[b and c]");
  auto e1 = ParseXmlToEvents("<a><b/><c/></a>");
  auto e2 = ParseXmlToEvents("<a><c/></a>");
  ASSERT_TRUE(e1.ok() && e2.ok());
  // Feed only the prefix up to just before </a>.
  ASSERT_TRUE(r.filter->Reset().ok());
  for (size_t i = 0; i + 2 < e1->size(); ++i) {
    ASSERT_TRUE(r.filter->OnEvent((*e1)[i]).ok());
  }
  std::string s1 = r.filter->SerializeState();
  ASSERT_TRUE(r.filter->Reset().ok());
  for (size_t i = 0; i + 2 < e2->size(); ++i) {
    ASSERT_TRUE(r.filter->OnEvent((*e2)[i]).ok());
  }
  std::string s2 = r.filter->SerializeState();
  EXPECT_NE(s1, s2);
}

TEST(FrontierFilterTest, DeepNonMatchingDocument) {
  Runner r = Make("/a/b");
  std::string xml = "<a>";
  for (int i = 0; i < 50; ++i) xml += "<z>";
  for (int i = 0; i < 50; ++i) xml += "</z>";
  xml += "<b/></a>";
  EXPECT_TRUE(Filter("/a/b", xml));
  // And re-parented b must not match.
  std::string xml2 = "<a><z><b/></z></a>";
  EXPECT_FALSE(Filter("/a/b", xml2));
}

}  // namespace
}  // namespace xpstream
