#include <gtest/gtest.h>

#include "common/random.h"
#include "stream/nfa_filter.h"
#include "stream/nfa_index.h"
#include "workload/doc_generator.h"
#include "workload/query_generator.h"
#include "xml/parser.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace xpstream {
namespace {

struct IndexFixture {
  NfaIndex index;
  std::vector<std::unique_ptr<Query>> queries;

  void Add(const std::string& text) {
    auto q = ParseQuery(text);
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    ASSERT_TRUE(index.AddQuery(queries.size(), **q).ok()) << text;
    queries.push_back(std::move(q).value());
  }

  std::vector<bool> Run(const std::string& xml) {
    auto events = ParseXmlToEvents(xml);
    EXPECT_TRUE(events.ok());
    auto verdicts = index.FilterDocument(events->events());
    EXPECT_TRUE(verdicts.ok()) << verdicts.status().ToString();
    return verdicts.ok() ? *verdicts : std::vector<bool>{};
  }
};

TEST(NfaIndexTest, SingleQuery) {
  IndexFixture f;
  f.Add("/a/b");
  EXPECT_EQ(f.Run("<a><b/></a>"), (std::vector<bool>{true}));
  EXPECT_EQ(f.Run("<a><c/></a>"), (std::vector<bool>{false}));
  EXPECT_EQ(f.Run("<a><x><b/></x></a>"), (std::vector<bool>{false}));
}

TEST(NfaIndexTest, MultipleQueriesOneScan) {
  IndexFixture f;
  f.Add("/a/b");
  f.Add("/a/c");
  f.Add("//c");
  f.Add("/a/b/c");
  auto v = f.Run("<a><b><c/></b></a>");
  EXPECT_EQ(v, (std::vector<bool>{true, false, true, true}));
}

TEST(NfaIndexTest, PrefixSharingReducesStates) {
  // 4 queries sharing the /a/b prefix: the trie shares those states.
  NfaIndex shared;
  size_t individual_states = 0;
  std::vector<std::string> texts = {"/a/b/c", "/a/b/d", "/a/b/e", "/a/b/f"};
  std::vector<std::unique_ptr<Query>> keep;
  for (size_t i = 0; i < texts.size(); ++i) {
    auto q = ParseQuery(texts[i]);
    ASSERT_TRUE(q.ok());
    ASSERT_TRUE(shared.AddQuery(i, **q).ok());
    individual_states += 4;  // root + 3 steps each
    keep.push_back(std::move(q).value());
  }
  // Shared: root + a + b + 4 leaves = 7 < 16.
  EXPECT_EQ(shared.NumStates(), 7u);
  EXPECT_LT(shared.NumStates(), individual_states);
}

TEST(NfaIndexTest, DescendantAxisSelfLoops) {
  IndexFixture f;
  f.Add("//b");
  f.Add("//a//b");
  f.Add("/a//b");
  auto v = f.Run("<a><x><b/></x></a>");
  EXPECT_EQ(v, (std::vector<bool>{true, true, true}));
  auto v2 = f.Run("<c><b/></c>");
  EXPECT_EQ(v2, (std::vector<bool>{true, false, false}));
}

TEST(NfaIndexTest, WildcardSteps) {
  IndexFixture f;
  f.Add("/a/*/c");
  f.Add("/*/b");
  auto v = f.Run("<a><b><c/></b></a>");
  EXPECT_EQ(v, (std::vector<bool>{true, true}));
  auto v2 = f.Run("<a><c/></a>");
  EXPECT_EQ(v2, (std::vector<bool>{false, false}));
}

TEST(NfaIndexTest, AttributeQueries) {
  IndexFixture f;
  f.Add("/a/@id");
  f.Add("//b/@k");
  auto v = f.Run("<a id=\"1\"><b k=\"v\"/></a>");
  EXPECT_EQ(v, (std::vector<bool>{true, true}));
  auto v2 = f.Run("<a><b/></a>");
  EXPECT_EQ(v2, (std::vector<bool>{false, false}));
}

TEST(NfaIndexTest, RejectsTwigQueries) {
  NfaIndex index;
  auto q = ParseQuery("/a[b]");
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(index.AddQuery(0, **q).ok());
}

TEST(NfaIndexTest, RecursiveDocument) {
  IndexFixture f;
  f.Add("//a//a//a");
  f.Add("/a/a");
  auto v = f.Run("<a><a><a/></a></a>");
  EXPECT_EQ(v, (std::vector<bool>{true, true}));
  auto v2 = f.Run("<a><a/></a>");
  EXPECT_EQ(v2, (std::vector<bool>{false, true}));
}

TEST(NfaIndexTest, DifferentialAgainstSingleQueryEngines) {
  Random rng(606);
  DocGenOptions dopts;
  dopts.max_depth = 6;
  dopts.name_pool = 3;
  dopts.names = {"s0", "s1", "s2"};

  NfaIndex index;
  std::vector<std::unique_ptr<Query>> queries;
  for (size_t i = 0; i < 40; ++i) {
    auto q = GenerateLinearQuery(&rng, 1 + rng.Uniform(4), 0.4, 0.15, 3);
    ASSERT_TRUE(q.ok());
    ASSERT_TRUE(index.AddQuery(i, **q).ok());
    queries.push_back(std::move(q).value());
  }

  for (int trial = 0; trial < 40; ++trial) {
    auto doc = GenerateRandomDocument(&rng, dopts);
    auto verdicts = index.FilterDocument(doc->ToEvents());
    ASSERT_TRUE(verdicts.ok());
    for (size_t i = 0; i < queries.size(); ++i) {
      bool expected = BoolEval(*queries[i], *doc);
      EXPECT_EQ((*verdicts)[i], expected)
          << queries[i]->ToString() << " on "
          << EventStreamToString(doc->ToEvents());
      if (::testing::Test::HasFailure()) return;
    }
  }
}

TEST(NfaIndexTest, StatsTrackActiveSets) {
  IndexFixture f;
  f.Add("//a//b");
  std::string xml;
  for (int i = 0; i < 20; ++i) xml += "<a>";
  for (int i = 0; i < 20; ++i) xml += "</a>";
  f.Run(xml);
  EXPECT_GE(f.index.stats().table_entries().peak(), 20u);
}

}  // namespace
}  // namespace xpstream
