#include <gtest/gtest.h>

#include "common/random.h"
#include "stream/frontier_filter.h"
#include "workload/doc_generator.h"
#include "workload/query_generator.h"
#include "xml/parser.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace xpstream {
namespace {

/// Runs the filter in output-collection mode; returns selected values.
std::vector<std::string> Collect(const std::string& query_text,
                                 const std::string& xml) {
  auto q = ParseQuery(query_text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  auto f = FrontierFilter::Create(q->get());
  EXPECT_TRUE(f.ok()) << f.status().ToString();
  Status enable = (*f)->EnableOutputCollection();
  EXPECT_TRUE(enable.ok()) << enable.ToString();
  auto events = ParseXmlToEvents(xml);
  EXPECT_TRUE(events.ok());
  auto verdict = RunFilter(f->get(), events->events());
  EXPECT_TRUE(verdict.ok()) << verdict.status().ToString();
  return (*f)->outputs();
}

/// Ground truth: FULLEVAL string values.
std::vector<std::string> Expected(const Query& q, const XmlDocument& doc) {
  std::vector<std::string> out;
  for (const XmlNode* node : FullEval(q, doc)) {
    out.push_back(node->StringValue());
  }
  return out;
}

TEST(OutputCollectionTest, SimpleSelection) {
  EXPECT_EQ(Collect("/a/b", "<a><b>1</b><c/><b>2</b></a>"),
            (std::vector<std::string>{"1", "2"}));
}

TEST(OutputCollectionTest, EmptyWhenNoMatch) {
  EXPECT_TRUE(Collect("/a/b", "<a><c/></a>").empty());
}

TEST(OutputCollectionTest, PredicateOnOutputNode) {
  EXPECT_EQ(Collect("/a/b[c]", "<a><b>x<c/></b><b>y</b><b>z<c/></b></a>"),
            (std::vector<std::string>{"x", "z"}));
}

TEST(OutputCollectionTest, ValuePredicateOnOutputSubtree) {
  EXPECT_EQ(Collect("/a/b[c > 5]",
                    "<a><b>u<c>6</c></b><b>v<c>2</c></b></a>"),
            (std::vector<std::string>{"u6"}));
}

TEST(OutputCollectionTest, AncestorPredicateGatesOutputs) {
  // The root-level predicate fails: nothing is emitted even though b
  // elements exist.
  EXPECT_TRUE(Collect("/a[q]/b", "<a><b>1</b></a>").empty());
  EXPECT_EQ(Collect("/a[q]/b", "<a><q/><b>1</b></a>"),
            (std::vector<std::string>{"1"}));
}

TEST(OutputCollectionTest, MidChainPredicate) {
  // /a/b[c]/d: only d's under a c-bearing b are selected.
  EXPECT_EQ(Collect("/a/b[c]/d",
                    "<a><b><c/><d>1</d></b><b><d>2</d></b>"
                    "<b><d>3</d><c/></b></a>"),
            (std::vector<std::string>{"1", "3"}));
}

TEST(OutputCollectionTest, PaperFig2Query) {
  EXPECT_EQ(Collect("/a[c[.//e and f] and b > 5]/b",
                    "<a><c><e/><f/></c><b>6</b></a>"),
            (std::vector<std::string>{"6"}));
  EXPECT_TRUE(Collect("/a[c[.//e and f] and b > 5]/b",
                      "<a><c><f/></c><b>6</b></a>")
                  .empty());
}

TEST(OutputCollectionTest, NestedTextConcatenated) {
  EXPECT_EQ(Collect("/a/b", "<a><b>x<i>y</i>z</b></a>"),
            (std::vector<std::string>{"xyz"}));
}

TEST(OutputCollectionTest, RejectsDescendantChain) {
  auto q = ParseQuery("//a/b");
  ASSERT_TRUE(q.ok());
  auto f = FrontierFilter::Create(q->get());
  ASSERT_TRUE(f.ok());
  EXPECT_FALSE((*f)->EnableOutputCollection().ok());
}

TEST(OutputCollectionTest, BooleanVerdictUnaffected) {
  auto q = ParseQuery("/a/b[c]");
  ASSERT_TRUE(q.ok());
  auto f = FrontierFilter::Create(q->get());
  ASSERT_TRUE(f.ok());
  ASSERT_TRUE((*f)->EnableOutputCollection().ok());
  auto events = ParseXmlToEvents("<a><b><c/></b></a>");
  ASSERT_TRUE(events.ok());
  auto verdict = RunFilter(f->get(), events->events());
  ASSERT_TRUE(verdict.ok());
  EXPECT_TRUE(*verdict);
  EXPECT_EQ((*f)->outputs().size(), 1u);
}

TEST(OutputCollectionTest, DifferentialAgainstFullEval) {
  // Random child-axis-chain queries vs the reference FULLEVAL.
  Random rng(909);
  DocGenOptions dopts;
  dopts.max_depth = 5;
  dopts.name_pool = 3;
  QueryGenOptions qopts;
  qopts.max_depth = 3;
  qopts.name_pool = 3;
  qopts.descendant_prob = 0;  // child-axis chains only
  size_t checked = 0;
  for (int i = 0; i < 250; ++i) {
    auto query = GenerateRandomQuery(&rng, qopts);
    ASSERT_TRUE(query.ok());
    auto filter = FrontierFilter::Create(query->get());
    if (!filter.ok()) continue;
    if (!(*filter)->EnableOutputCollection().ok()) continue;
    auto doc = GenerateRandomDocument(&rng, dopts);
    auto verdict = RunFilter(filter->get(), doc->ToEvents());
    ASSERT_TRUE(verdict.ok());
    EXPECT_EQ((*filter)->outputs(), Expected(**query, *doc))
        << (*query)->ToString() << "\n"
        << EventStreamToString(doc->ToEvents());
    ++checked;
    if (::testing::Test::HasFailure()) return;
  }
  EXPECT_GT(checked, 150u);
}

TEST(OutputCollectionTest, DifferentialWithDescendantPredicates) {
  // Chain must be child-axis, but predicates may use '//' freely.
  Random rng(910);
  DocGenOptions dopts;
  dopts.max_depth = 6;
  dopts.name_pool = 3;
  for (int i = 0; i < 120; ++i) {
    auto query = GenerateRandomQuery(&rng, [] {
      QueryGenOptions o;
      o.max_depth = 3;
      o.name_pool = 3;
      o.descendant_prob = 0.4;
      return o;
    }());
    ASSERT_TRUE(query.ok());
    auto filter = FrontierFilter::Create(query->get());
    if (!filter.ok()) continue;
    if (!(*filter)->EnableOutputCollection().ok()) continue;  // '//' chain
    auto doc = GenerateRandomDocument(&rng, dopts);
    auto verdict = RunFilter(filter->get(), doc->ToEvents());
    ASSERT_TRUE(verdict.ok());
    EXPECT_EQ((*filter)->outputs(), Expected(**query, *doc))
        << (*query)->ToString();
    if (::testing::Test::HasFailure()) return;
  }
}

}  // namespace
}  // namespace xpstream
