#include <gtest/gtest.h>

#include "common/random.h"
#include "stream/frontier_filter.h"
#include "test_util.h"
#include "stream/session.h"
#include "workload/doc_generator.h"
#include "workload/scenarios.h"
#include "xml/parser.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace xpstream {
namespace {

TEST(SessionTest, SequenceOfDocuments) {
  auto q = ParseQuery("/a[b]");
  ASSERT_TRUE(q.ok());
  auto f = FrontierFilter::Create(q->get());
  ASSERT_TRUE(f.ok());
  std::vector<EventBuffer> buffers;  // owns the events' backing bytes
  std::vector<EventStream> docs;
  for (const std::string& xml : testutil::LoadTestDataLines("session_ab.xml")) {
    auto events = ParseXmlToEvents(xml);
    ASSERT_TRUE(events.ok());
    buffers.push_back(std::move(events).value());
    docs.push_back(buffers.back().events());
  }
  auto verdicts = FilterDocumentBatch(f->get(), docs);
  ASSERT_TRUE(verdicts.ok());
  EXPECT_EQ(*verdicts, (std::vector<bool>{true, false, true}));
}

TEST(SessionTest, StateDoesNotLeakBetweenDocuments) {
  // A match in document 1 must not bleed into document 2 and vice versa.
  auto q = ParseQuery("/a[b and c]");
  ASSERT_TRUE(q.ok());
  auto f = FrontierFilter::Create(q->get());
  ASSERT_TRUE(f.ok());
  // First two documents of the session_ab fixture: neither has both b and c.
  auto lines = testutil::LoadTestDataLines("session_ab.xml");
  lines.resize(2);
  std::vector<EventBuffer> buffers;  // owns the events' backing bytes
  std::vector<EventStream> docs;
  for (const std::string& xml : lines) {
    auto events = ParseXmlToEvents(xml);
    ASSERT_TRUE(events.ok());
    buffers.push_back(std::move(events).value());
    docs.push_back(buffers.back().events());
  }
  auto verdicts = FilterDocumentBatch(f->get(), docs);
  ASSERT_TRUE(verdicts.ok());
  // Neither document alone has both b and c.
  EXPECT_EQ(*verdicts, (std::vector<bool>{false, false}));
}

TEST(SessionTest, DrivenDirectlyByStreamingParser) {
  // End-to-end: bytes -> XmlParser -> FilterSession -> verdicts, with
  // documents arriving back to back in one byte stream, fed in tiny
  // chunks.
  auto q = ParseQuery("/m[p > 5]");
  ASSERT_TRUE(q.ok());
  auto f = FrontierFilter::Create(q->get());
  ASSERT_TRUE(f.ok());
  FilterSession session(f->get());

  for (const std::string& text : testutil::LoadTestDataLines("session_prices.xml")) {
    XmlParser parser(&session);
    for (size_t i = 0; i < text.size(); i += 3) {
      ASSERT_TRUE(parser.Feed(text.substr(i, 3)).ok());
    }
    ASSERT_TRUE(parser.Finish().ok());
  }
  EXPECT_EQ(session.verdicts(), (std::vector<bool>{true, false, true}));
  EXPECT_EQ(session.documents_seen(), 3u);
}

TEST(SessionTest, RejectsMalformedBoundaries) {
  auto q = ParseQuery("/a");
  ASSERT_TRUE(q.ok());
  auto f = FrontierFilter::Create(q->get());
  ASSERT_TRUE(f.ok());
  FilterSession session(f->get());
  EXPECT_FALSE(session.OnEvent(Event::StartElement("a")).ok());
  ASSERT_TRUE(session.OnEvent(Event::StartDocument()).ok());
  EXPECT_FALSE(session.OnEvent(Event::StartDocument()).ok());
}

TEST(SessionTest, TracksPeakMemoryAcrossDocuments) {
  auto q = ParseQuery("//a[b and c]");
  ASSERT_TRUE(q.ok());
  auto f = FrontierFilter::Create(q->get());
  ASSERT_TRUE(f.ok());
  std::vector<EventBuffer> buffers;  // owns the events' backing bytes
  std::vector<EventStream> docs;
  // Second document is much deeper; the session peak reflects it.
  std::string deep;
  for (int i = 0; i < 10; ++i) deep += "<a>";
  for (int i = 0; i < 10; ++i) deep += "</a>";
  for (const std::string& xml : {std::string("<a/>"), deep}) {
    auto events = ParseXmlToEvents(xml);
    ASSERT_TRUE(events.ok());
    buffers.push_back(std::move(events).value());
    docs.push_back(buffers.back().events());
  }
  auto verdicts = FilterDocumentBatch(f->get(), docs);
  ASSERT_TRUE(verdicts.ok());
  FilterSession session(f->get());
  for (const auto& d : docs) {
    for (const Event& e : d) ASSERT_TRUE(session.OnEvent(e).ok());
  }
  EXPECT_GE(session.peak_table_entries(), 10u);
}

TEST(SessionTest, RandomizedAgainstGroundTruth) {
  Random rng(4242);
  auto q = ParseQuery("/book[price < 50]/title");
  ASSERT_TRUE(q.ok());
  auto f = FrontierFilter::Create(q->get());
  ASSERT_TRUE(f.ok());
  auto corpus = GenerateBibliographyCorpus(30, 99);
  std::vector<EventStream> docs;
  std::vector<bool> expected;
  for (const auto& doc : corpus) {
    docs.push_back(doc->ToEvents());
    expected.push_back(BoolEval(**q, *doc));
  }
  auto verdicts = FilterDocumentBatch(f->get(), docs);
  ASSERT_TRUE(verdicts.ok());
  EXPECT_EQ(*verdicts, expected);
}

}  // namespace
}  // namespace xpstream
