#include "test_util.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace xpstream {
namespace testutil {

std::string TestDataPath(std::string_view name) {
  return std::string(XPSTREAM_TESTDATA_DIR) + "/" + std::string(name);
}

std::string LoadTestData(std::string_view name) {
  const std::string path = TestDataPath(name);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "test_util: cannot open testdata file %s\n",
                 path.c_str());
    std::abort();
  }
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::vector<std::string> LoadTestDataLines(std::string_view name) {
  std::istringstream in(LoadTestData(name));
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

}  // namespace testutil
}  // namespace xpstream
