#ifndef XPSTREAM_TESTS_TEST_UTIL_H_
#define XPSTREAM_TESTS_TEST_UTIL_H_

/// \file
/// Helpers for loading checked-in documents from tests/testdata/. The
/// directory is baked in at configure time via XPSTREAM_TESTDATA_DIR, so
/// tests work from any working directory CTest chooses.

#include <string>
#include <string_view>
#include <vector>

namespace xpstream {
namespace testutil {

/// Returns the absolute path of a file under tests/testdata/.
std::string TestDataPath(std::string_view name);

/// Reads a testdata file and returns its contents. Aborts with a message on
/// a missing or unreadable file — a missing fixture is a harness bug, not a
/// test outcome.
std::string LoadTestData(std::string_view name);

/// Reads a testdata file holding one XML document per non-empty line
/// (used for multi-document session fixtures).
std::vector<std::string> LoadTestDataLines(std::string_view name);

}  // namespace testutil
}  // namespace xpstream

#endif  // XPSTREAM_TESTS_TEST_UTIL_H_
