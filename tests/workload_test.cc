#include <gtest/gtest.h>

#include "analysis/fragment.h"
#include "analysis/frontier.h"
#include "stream/frontier_filter.h"
#include "workload/doc_generator.h"
#include "workload/query_generator.h"
#include "workload/scenarios.h"
#include "xml/stats.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace xpstream {
namespace {

TEST(DocGeneratorTest, RespectsDepthBound) {
  Random rng(1);
  DocGenOptions opts;
  opts.max_depth = 4;
  for (int i = 0; i < 50; ++i) {
    auto doc = GenerateRandomDocument(&rng, opts);
    EXPECT_LE(doc->Depth(), 4u);
    EXPECT_GE(doc->Size(), 1u);
    EXPECT_TRUE(ValidateEventStream(doc->ToEvents()).ok());
  }
}

TEST(DocGeneratorTest, DeterministicForSeed) {
  DocGenOptions opts;
  Random r1(42), r2(42);
  auto d1 = GenerateRandomDocument(&r1, opts);
  auto d2 = GenerateRandomDocument(&r2, opts);
  EXPECT_EQ(d1->ToEvents(), d2->ToEvents());
}

TEST(DocGeneratorTest, NestedDocumentShape) {
  // s=110, t=010 reproduces the paper's Fig. 5 document.
  auto doc = GenerateNestedDocument("a", "b", "c", {true, true, false},
                                    {false, true, false});
  EXPECT_EQ(EventStreamToString(doc->ToEvents()),
            "<$><a><b></b><a><b></b><a></a><c></c></a></a></$>");
}

TEST(DocGeneratorTest, DeepChain) {
  auto doc = GenerateDeepChain("a", "Z", 5, "b");
  EXPECT_EQ(doc->Depth(), 7u);  // a + 5 Z + b
  auto q = ParseQuery("/a//b");
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(BoolEval(**q, *doc));
}

TEST(DocGeneratorTest, WideDocument) {
  Random rng(3);
  auto doc = GenerateWideDocument("r", "c", 25, &rng);
  DocumentStats stats = ComputeDocumentStats(*doc);
  EXPECT_EQ(stats.element_count, 26u);
  EXPECT_EQ(stats.max_fanout, 25u);
}

TEST(QueryGeneratorTest, GeneratesParseableFragmentQueries) {
  Random rng(11);
  QueryGenOptions opts;
  size_t supported = 0;
  for (int i = 0; i < 100; ++i) {
    auto q = GenerateRandomQuery(&rng, opts);
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    EXPECT_GE((*q)->size(), 2u);
    if (FrontierFilter::Create(q->get()).ok()) ++supported;
  }
  EXPECT_GT(supported, 85u);
}

TEST(QueryGeneratorTest, DistinctNamesAreRedundancyFree) {
  Random rng(12);
  QueryGenOptions opts;
  opts.distinct_names = true;
  opts.value_predicate_prob = 0.5;
  size_t redundancy_free = 0;
  for (int i = 0; i < 30; ++i) {
    auto q = GenerateRandomQuery(&rng, opts);
    ASSERT_TRUE(q.ok());
    FragmentReport report = ClassifyQuery(**q);
    if (report.redundancy_free) ++redundancy_free;
  }
  EXPECT_GT(redundancy_free, 25u);
}

TEST(QueryGeneratorTest, LinearQueriesAreLinear) {
  Random rng(13);
  for (int i = 0; i < 30; ++i) {
    auto q = GenerateLinearQuery(&rng, 4, 0.3, 0.2, 3);
    ASSERT_TRUE(q.ok());
    size_t steps = 0;
    for (const QueryNode* n = (*q)->root()->successor(); n != nullptr;
         n = n->successor()) {
      ++steps;
    }
    EXPECT_EQ(steps, 4u);
    EXPECT_EQ((*q)->size(), 5u);
  }
}

TEST(QueryGeneratorTest, FrontierFamilyHasLinearFS) {
  for (size_t k = 1; k <= 10; ++k) {
    auto q = ParseQuery(FrontierFamilyQueryText(k));
    ASSERT_TRUE(q.ok());
    EXPECT_EQ(FrontierSize(**q), k + 1);  // k predicates + the successor
    FragmentReport report = ClassifyQuery(**q);
    EXPECT_TRUE(report.redundancy_free) << FrontierFamilyQueryText(k);
  }
}

TEST(ScenariosTest, BibliographyCorpusParsesAndFilters) {
  auto corpus = GenerateBibliographyCorpus(20, 777);
  ASSERT_EQ(corpus.size(), 20u);
  for (const std::string& text : BibliographySubscriptions()) {
    auto q = ParseQuery(text);
    ASSERT_TRUE(q.ok()) << text;
    auto filter = FrontierFilter::Create(q->get());
    ASSERT_TRUE(filter.ok()) << text << ": " << filter.status().ToString();
    size_t hits = 0;
    for (const auto& doc : corpus) {
      bool expected = BoolEval(**q, *doc);
      auto verdict = RunFilter(filter->get(), doc->ToEvents());
      ASSERT_TRUE(verdict.ok());
      EXPECT_EQ(*verdict, expected) << text;
      hits += *verdict;
    }
    // Subscriptions are neither trivially empty nor trivially full on a
    // 20-doc corpus... at least they never crash; selectivity checked
    // loosely.
    EXPECT_LE(hits, 20u);
  }
}

TEST(ScenariosTest, MessageFeedRecursionExercised) {
  Random rng(5);
  auto feed = GenerateMessageFeed(10, 4, &rng);
  EXPECT_GT(feed->Depth(), 3u);
  for (const std::string& text : MessageFeedSubscriptions()) {
    auto q = ParseQuery(text);
    ASSERT_TRUE(q.ok()) << text;
    auto filter = FrontierFilter::Create(q->get());
    ASSERT_TRUE(filter.ok()) << text;
    bool expected = BoolEval(**q, *feed);
    auto verdict = RunFilter(filter->get(), feed->ToEvents());
    ASSERT_TRUE(verdict.ok());
    EXPECT_EQ(*verdict, expected) << text;
  }
}

}  // namespace
}  // namespace xpstream
