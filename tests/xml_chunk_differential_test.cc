// Chunk-boundary differential test: feeding a document to the parser
// in fixed-size chunks must be observationally identical to feeding it
// whole — same events (after text-merge normalization the chunked path
// is allowed to split text runs), same error, same entity-cap failure
// point. Runs every checked-in corpus in tests/testdata plus an
// entity-dense synthetic document through chunk widths 1/2/3/7/64/4096,
// in both the default arena-backed mode and with a symbol table.

#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "test_util.h"
#include "xml/event.h"
#include "xml/parser.h"
#include "xml/symbol_table.h"

namespace xpstream {
namespace {

constexpr size_t kChunkWidths[] = {1, 2, 3, 7, 64, 4096};

/// Everything observable from one parse: the emitted events (owned —
/// the parser and its arena die with this function) and the final
/// status rendering.
struct ParseOutcome {
  EventBuffer events;
  std::string status;
};

/// Parses `xml` in fixed chunks of `width` bytes (0 = one whole-buffer
/// Feed). Stops feeding at the first error, like a real caller.
ParseOutcome ParseChunked(std::string_view xml, size_t width,
                          SymbolTable* symbols, size_t entity_cap) {
  ParseOutcome out;
  BufferingSink sink(&out.events);
  XmlParser parser(&sink, symbols);
  parser.SetMaxEntityExpansionBytes(entity_cap);
  Status status = Status::OK();
  if (width == 0) {
    status = parser.Feed(xml);
  } else {
    for (size_t pos = 0; status.ok() && pos < xml.size(); pos += width) {
      status = parser.Feed(xml.substr(pos, width));
    }
  }
  if (status.ok()) status = parser.Finish();
  out.status = status.ToString();
  return out;
}

/// Merges adjacent text events: the chunked parse may split one text
/// run at a chunk boundary, which is the one divergence the streaming
/// contract allows.
EventBuffer NormalizeText(const EventStream& events) {
  EventBuffer out;
  std::string pending;
  auto flush = [&] {
    if (!pending.empty()) out.Append(Event::Text(pending));
    pending.clear();
  };
  for (const Event& e : events) {
    if (e.type == EventType::kText) {
      pending += e.text;
      continue;
    }
    flush();
    out.Append(e);
  }
  flush();
  return out;
}

void ExpectChunkingInvariant(std::string_view xml, size_t entity_cap,
                             const std::string& label) {
  for (bool interned : {false, true}) {
    SymbolTable whole_symbols;
    ParseOutcome whole = ParseChunked(
        xml, 0, interned ? &whole_symbols : nullptr, entity_cap);
    const EventBuffer whole_norm = NormalizeText(whole.events.events());
    for (size_t width : kChunkWidths) {
      SymbolTable chunk_symbols;
      ParseOutcome chunked = ParseChunked(
          xml, width, interned ? &chunk_symbols : nullptr, entity_cap);
      EXPECT_EQ(chunked.status, whole.status)
          << label << " width=" << width << " interned=" << interned
          << " cap=" << entity_cap;
      EXPECT_TRUE(NormalizeText(chunked.events.events()) == whole_norm)
          << label << " width=" << width << " interned=" << interned
          << " cap=" << entity_cap << "\nwhole  : "
          << EventStreamToString(whole.events.events()) << "\nchunked: "
          << EventStreamToString(chunked.events.events());
      if (::testing::Test::HasFailure()) return;
    }
  }
}

/// All documents in the checked-in corpora: whole-file fixtures plus
/// the one-document-per-line session fixtures.
std::vector<std::pair<std::string, std::string>> TestDataDocuments() {
  std::vector<std::pair<std::string, std::string>> docs;
  for (const char* name : {"attrs.xml", "mixed.xml"}) {
    docs.emplace_back(name, testutil::LoadTestData(name));
  }
  for (const char* name : {"session_ab.xml", "session_prices.xml"}) {
    const auto lines = testutil::LoadTestDataLines(name);
    for (size_t i = 0; i < lines.size(); ++i) {
      docs.emplace_back(std::string(name) + ":" + std::to_string(i),
                        lines[i]);
    }
  }
  return docs;
}

TEST(XmlChunkDifferentialTest, TestDataCorporaAllWidths) {
  for (const auto& [label, xml] : TestDataDocuments()) {
    ExpectChunkingInvariant(xml, /*entity_cap=*/0, label);
    if (::testing::Test::HasFailure()) return;
  }
}

TEST(XmlChunkDifferentialTest, TestDataCorporaUnderEntityCaps) {
  // Caps low enough to trip mid-document on the corpora that decode
  // references: the failure (or success) must be byte-for-byte the
  // same whether the reference arrived whole or split across chunks.
  for (const auto& [label, xml] : TestDataDocuments()) {
    for (size_t cap : {1u, 8u, 64u}) {
      ExpectChunkingInvariant(xml, cap, label);
      if (::testing::Test::HasFailure()) return;
    }
  }
}

TEST(XmlChunkDifferentialTest, EntityDenseDocumentTripsCapIdentically) {
  // 40 references expanding to 1 byte each; caps planted before, on,
  // and after every interesting boundary. Guarantees the cap failure
  // path itself is chunk-invariant (the testdata corpora hold at most
  // one reference each).
  std::string xml = "<a>";
  for (int i = 0; i < 10; ++i) xml += "&amp;&#955;&lt;&#x1F600;";
  xml += "</a>";
  for (size_t cap : {1u, 2u, 5u, 9u, 40u, 1000u}) {
    ExpectChunkingInvariant(xml, cap, "entity-dense");
    if (::testing::Test::HasFailure()) return;
  }
  ExpectChunkingInvariant(xml, /*entity_cap=*/0, "entity-dense");
}

TEST(XmlChunkDifferentialTest, StructuralTokensAcrossBoundaries) {
  // Documents whose multi-byte tokens (CDATA fences, comments, charrefs,
  // attribute quotes) land on every width-1/2/3 boundary by
  // construction — the spill/rebase path must reproduce the whole-buffer
  // parse exactly.
  const char* inputs[] = {
      "<a><![CDATA[x]]y]]&gt;]]></a>",
      "<a><!-- - -- ->x--><b q='\"'/></a>",
      "<a longattr=\"v1\" b='v2'><c>t1</c>t2<d/></a>",
      "<?xml version=\"1.0\"?><r><s>&quot;&apos;</s></r>",
      // Structural bytes immediately followed by their XOR-1 neighbor
      // ('"#', '<=', '>?') — the pattern that defeats a borrow-based
      // SWAR matcher by falsely flagging the trailing byte.
      "<a href=\"#top\">t<b>text more</b></a>",
      "<a><!-- x <= y >? --><b q=\"#\"/>#</a>",
      "<a><![CDATA[a<=b >? \"#frag\"]]></a>",
  };
  for (const char* input : inputs) {
    ExpectChunkingInvariant(input, /*entity_cap=*/0, input);
    if (::testing::Test::HasFailure()) return;
  }
}

}  // namespace
}  // namespace xpstream
