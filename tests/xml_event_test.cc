#include <gtest/gtest.h>

#include "xml/event.h"

namespace xpstream {
namespace {

EventStream Wrap(EventStream inner) {
  EventStream out;
  out.push_back(Event::StartDocument());
  for (auto& e : inner) out.push_back(std::move(e));
  out.push_back(Event::EndDocument());
  return out;
}

TEST(EventTest, PaperNotation) {
  EXPECT_EQ(Event::StartDocument().ToString(), "<$>");
  EXPECT_EQ(Event::EndDocument().ToString(), "</$>");
  EXPECT_EQ(Event::StartElement("a").ToString(), "<a>");
  EXPECT_EQ(Event::EndElement("a").ToString(), "</a>");
  EXPECT_EQ(Event::Text("hi").ToString(), "hi");
  EXPECT_EQ(Event::Attribute("k", "v").ToString(), "@k=\"v\"");
}

TEST(EventTest, StreamToString) {
  EventStream s = Wrap({Event::StartElement("a"), Event::Text("x"),
                        Event::EndElement("a")});
  EXPECT_EQ(EventStreamToString(s), "<$><a>x</a></$>");
}

TEST(ValidateTest, AcceptsWellFormed) {
  EventStream s = Wrap({Event::StartElement("a"),
                        Event::Attribute("id", "1"),
                        Event::StartElement("b"), Event::Text("t"),
                        Event::EndElement("b"), Event::EndElement("a")});
  EXPECT_TRUE(ValidateEventStream(s).ok());
}

TEST(ValidateTest, RejectsEmpty) {
  EXPECT_FALSE(ValidateEventStream({}).ok());
}

TEST(ValidateTest, RejectsMissingEnvelope) {
  EventStream s = {Event::StartElement("a"), Event::EndElement("a")};
  EXPECT_FALSE(ValidateEventStream(s).ok());
}

TEST(ValidateTest, RejectsMismatchedNesting) {
  EventStream s = Wrap({Event::StartElement("a"), Event::EndElement("b")});
  EXPECT_FALSE(ValidateEventStream(s).ok());
}

TEST(ValidateTest, RejectsUnclosedElement) {
  EventStream s = Wrap({Event::StartElement("a")});
  EXPECT_FALSE(ValidateEventStream(s).ok());
}

TEST(ValidateTest, RejectsMultipleRoots) {
  EventStream s = Wrap({Event::StartElement("a"), Event::EndElement("a"),
                        Event::StartElement("b"), Event::EndElement("b")});
  EXPECT_FALSE(ValidateEventStream(s).ok());
}

TEST(ValidateTest, RejectsTextOutsideRoot) {
  EventStream s = Wrap({Event::Text("x"), Event::StartElement("a"),
                        Event::EndElement("a")});
  EXPECT_FALSE(ValidateEventStream(s).ok());
}

TEST(ValidateTest, RejectsMisplacedAttribute) {
  EventStream s = Wrap({Event::StartElement("a"), Event::Text("t"),
                        Event::Attribute("k", "v"), Event::EndElement("a")});
  EXPECT_FALSE(ValidateEventStream(s).ok());
}

TEST(ValidateTest, AllowsConsecutiveAttributes) {
  EventStream s = Wrap({Event::StartElement("a"), Event::Attribute("k", "v"),
                        Event::Attribute("l", "w"), Event::EndElement("a")});
  EXPECT_TRUE(ValidateEventStream(s).ok());
}

TEST(ValidateTest, RejectsNoRootElement) {
  EventStream s = Wrap({});
  EXPECT_FALSE(ValidateEventStream(s).ok());
}

TEST(ValidateTest, RejectsInvalidElementName) {
  EventStream s = Wrap({Event::StartElement("1bad"), Event::EndElement("1bad")});
  EXPECT_FALSE(ValidateEventStream(s).ok());
}

TEST(CollectingSinkTest, Collects) {
  EventStream out;
  CollectingSink sink(&out);
  ASSERT_TRUE(sink.OnEvent(Event::StartDocument()).ok());
  ASSERT_TRUE(sink.OnEvent(Event::EndDocument()).ok());
  EXPECT_EQ(out.size(), 2u);
}

}  // namespace
}  // namespace xpstream
