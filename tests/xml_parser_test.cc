#include <gtest/gtest.h>

#include "test_util.h"
#include "xml/parser.h"
#include "xml/structural_index.h"
#include "xml/tree_builder.h"
#include "xml/writer.h"

namespace xpstream {
namespace {

std::string ParseToString(std::string_view xml) {
  auto events = ParseXmlToEvents(xml);
  EXPECT_TRUE(events.ok()) << events.status().ToString();
  if (!events.ok()) return "";
  return EventStreamToString(events->events());
}

TEST(XmlParserTest, SimpleDocument) {
  EXPECT_EQ(ParseToString("<a><b>hi</b></a>"), "<$><a><b>hi</b></a></$>");
}

TEST(XmlParserTest, SelfClosingTag) {
  EXPECT_EQ(ParseToString("<a><b/></a>"), "<$><a><b></b></a></$>");
}

TEST(XmlParserTest, Attributes) {
  EXPECT_EQ(ParseToString("<a x=\"1\" y='two'/>"),
            "<$><a>@x=\"1\"@y=\"two\"</a></$>");
}

TEST(XmlParserTest, EntityDecoding) {
  EXPECT_EQ(ParseToString("<a>&lt;&gt;&amp;&quot;&apos;</a>"),
            "<$><a><>&\"'</a></$>");
}

TEST(XmlParserTest, CharacterReferences) {
  EXPECT_EQ(ParseToString("<a>&#65;&#x42;</a>"), "<$><a>AB</a></$>");
}

TEST(XmlParserTest, Utf8CharacterReference) {
  auto events = ParseXmlToEvents("<a>&#955;</a>");  // greek lambda
  ASSERT_TRUE(events.ok());
  EXPECT_EQ((*events)[2].text, "\xCE\xBB");
}

TEST(XmlParserTest, CommentsSkipped) {
  EXPECT_EQ(ParseToString("<a><!-- hello <b> --><c/></a>"),
            "<$><a><c></c></a></$>");
}

TEST(XmlParserTest, XmlDeclarationSkipped) {
  EXPECT_EQ(ParseToString("<?xml version=\"1.0\"?><a/>"), "<$><a></a></$>");
}

TEST(XmlParserTest, CdataSection) {
  EXPECT_EQ(ParseToString("<a><![CDATA[<raw>&amp;]]></a>"),
            "<$><a><raw>&amp;</a></$>");
}

TEST(XmlParserTest, WhitespaceOutsideRootAllowed) {
  EXPECT_EQ(ParseToString("  <a/>  \n"), "<$><a></a></$>");
}

TEST(XmlParserTest, ChunkedFeedingAnySplit) {
  const std::string xml = testutil::LoadTestData("mixed.xml");
  auto whole = ParseXmlToEvents(xml);
  ASSERT_TRUE(whole.ok());
  for (size_t split = 1; split < xml.size(); ++split) {
    EventStream events;
    CollectingSink sink(&events);
    XmlParser parser(&sink);
    ASSERT_TRUE(parser.Feed(xml.substr(0, split)).ok()) << split;
    ASSERT_TRUE(parser.Feed(xml.substr(split)).ok()) << split;
    ASSERT_TRUE(parser.Finish().ok()) << split;
    EXPECT_EQ(events, *whole) << "split at " << split;
  }
}

TEST(XmlParserTest, ErrorMismatchedTags) {
  EXPECT_FALSE(ParseXmlToEvents("<a><b></a></b>").ok());
}

TEST(XmlParserTest, ErrorUnclosedElement) {
  EXPECT_FALSE(ParseXmlToEvents("<a><b>").ok());
}

TEST(XmlParserTest, ErrorTextOutsideRoot) {
  EXPECT_FALSE(ParseXmlToEvents("hello<a/>").ok());
}

TEST(XmlParserTest, ErrorContentAfterRoot) {
  EXPECT_FALSE(ParseXmlToEvents("<a/><b/>").ok());
}

TEST(XmlParserTest, ErrorUnknownEntity) {
  EXPECT_FALSE(ParseXmlToEvents("<a>&nope;</a>").ok());
}

TEST(XmlParserTest, ErrorBadAttributeSyntax) {
  EXPECT_FALSE(ParseXmlToEvents("<a x=1/>").ok());
  EXPECT_FALSE(ParseXmlToEvents("<a x></a>").ok());
}

TEST(XmlParserTest, ErrorDtdUnsupported) {
  EXPECT_FALSE(ParseXmlToEvents("<!DOCTYPE a><a/>").ok());
}

TEST(XmlParserTest, ErrorEmptyInput) {
  EXPECT_FALSE(ParseXmlToEvents("").ok());
}

TEST(XmlParserTest, ErrorInvalidName) {
  EXPECT_FALSE(ParseXmlToEvents("<1a/>").ok());
}

TEST(XmlParserTest, EntityExpansionCapEnforced) {
  // Six charrefs decode one byte each; a 4-byte budget fails the fifth.
  EventStream events;
  CollectingSink sink(&events);
  XmlParser parser(&sink);
  parser.SetMaxEntityExpansionBytes(4);
  Status status = parser.Feed("<a>&#65;&#66;&#67;&#68;&#69;&#70;</a>");
  if (status.ok()) status = parser.Finish();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("entity expansion"), std::string::npos)
      << status.ToString();
}

TEST(XmlParserTest, EntityExpansionCapIgnoresPlainText) {
  // Only decoded entity bytes count against the budget — plain text of
  // any length is free, and an under-budget document parses normally.
  EventStream events;
  CollectingSink sink(&events);
  XmlParser parser(&sink);
  parser.SetMaxEntityExpansionBytes(4);
  const std::string xml = "<a>" + std::string(4096, 'x') + "&#65;&#66;</a>";
  ASSERT_TRUE(parser.Feed(xml).ok());
  ASSERT_TRUE(parser.Finish().ok());
}

TEST(XmlParserTest, EntityExpansionUnlimitedByDefault) {
  std::string xml = "<a>";
  for (int i = 0; i < 256; ++i) xml += "&amp;";
  xml += "</a>";
  EXPECT_TRUE(ParseXmlToEvents(xml).ok());
}

TEST(XmlWriterTest, RoundTripThroughWriter) {
  const std::string xml = testutil::LoadTestData("attrs.xml");
  auto events = ParseXmlToEvents(xml);
  ASSERT_TRUE(events.ok());
  auto text = EventsToXml(events->events());
  ASSERT_TRUE(text.ok());
  auto reparsed = ParseXmlToEvents(*text);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(*reparsed, *events);
}

TEST(XmlWriterTest, IndentedOutputReparses) {
  auto events = ParseXmlToEvents("<a><b><c/></b><d>t</d></a>");
  ASSERT_TRUE(events.ok());
  WriterOptions options;
  options.indent = true;
  auto text = EventsToXml(events->events(), options);
  ASSERT_TRUE(text.ok());
  EXPECT_NE(text->find('\n'), std::string::npos);
  // Reparse and compare element structure (whitespace text may differ).
  auto doc = ParseXmlToDocument(*text);
  ASSERT_TRUE(doc.ok());
}

TEST(XmlWriterTest, EscapesSpecialCharacters) {
  EventStream events = {Event::StartDocument(), Event::StartElement("a"),
                        Event::Text("<&>"), Event::EndElement("a"),
                        Event::EndDocument()};
  auto text = EventsToXml(events);
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(*text, "<a>&lt;&amp;&gt;</a>");
}

TEST(StructuralIndexTest, XorOneNeighborsAreNotFlagged) {
  // '#' == '"'^1, '=' == '<'^1, '?' == '>'^1, '\v' == '\n'^1. A
  // borrow-based SWAR zero-detector falsely flags each of these when it
  // directly follows its structural neighbor, and the resulting
  // kClass[b] - 1 underflow poisons the tape with a huge offset. The 16
  // bytes here keep every such pair inside the word loop (not the
  // scalar tail, which was never affected).
  const std::string buf = "z\"#q<=w>?\n\ve&'xx";
  ASSERT_EQ(buf.size(), 16u);
  StructuralIndex index;
  index.Scan(buf.data(), 0, buf.size());
  const std::vector<std::pair<size_t, StructuralKind>> expected = {
      {1, kStructQuot}, {4, kStructLt},  {7, kStructGt},
      {9, kStructNl},   {12, kStructAmp}, {13, kStructApos},
  };
  ASSERT_EQ(index.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(StructuralIndex::OffsetOf(index.entry(i)), expected[i].first)
        << "entry " << i;
    EXPECT_EQ(StructuralIndex::KindOf(index.entry(i)), expected[i].second)
        << "entry " << i;
  }
}

/// Merges adjacent text events — the one divergence a chunked feed is
/// allowed relative to a whole-buffer parse.
EventBuffer MergeAdjacentText(const EventStream& events) {
  EventBuffer out;
  std::string pending;
  auto flush = [&] {
    if (!pending.empty()) out.Append(Event::Text(pending));
    pending.clear();
  };
  for (const Event& e : events) {
    if (e.type == EventType::kText) {
      pending += e.text;
      continue;
    }
    flush();
    out.Append(e);
  }
  flush();
  return out;
}

TEST(XmlParserTest, HashAfterQuoteAcrossFeeds) {
  // Regression for the SWAR borrow bug end to end: the bogus tape entry
  // for '#' (offset wrapped to ~2^29 by the kClass underflow) survived
  // Rebase() after the first Feed and sent the tokenizer reading far
  // past the window on the second.
  EventBuffer events;
  BufferingSink sink(&events);
  XmlParser parser(&sink);
  ASSERT_TRUE(parser.Feed("<a href=\"#x\">t<b>text").ok());
  ASSERT_TRUE(parser.Feed(" more</b></a>").ok());
  ASSERT_TRUE(parser.Finish().ok());
  auto whole = ParseXmlToEvents("<a href=\"#x\">t<b>text more</b></a>");
  ASSERT_TRUE(whole.ok());
  EXPECT_TRUE(MergeAdjacentText(events.events()) ==
              MergeAdjacentText(whole->events()))
      << "feeds : " << EventStreamToString(events.events())
      << "\nwhole : " << EventStreamToString(whole->events());
}

}  // namespace
}  // namespace xpstream
