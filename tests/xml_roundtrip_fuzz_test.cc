// Round-trip fuzzing of the XML substrate:
//   tree -> events -> text -> (chunked) parser -> events -> tree
// must be the identity on structure and string values, for randomly
// generated documents and random chunkings.

#include <gtest/gtest.h>

#include "common/random.h"
#include "workload/doc_generator.h"
#include "workload/scenarios.h"
#include "xml/parser.h"
#include "xml/tree_builder.h"
#include "xml/writer.h"

namespace xpstream {
namespace {

/// Normalizes an event stream: merges adjacent text events (the parser
/// may split text at chunk boundaries before the TreeBuilder merges).
EventStream NormalizeText(const EventStream& events) {
  EventStream out;
  for (const Event& e : events) {
    if (e.type == EventType::kText && !out.empty() &&
        out.back().type == EventType::kText) {
      out.back().text += e.text;
      continue;
    }
    if (e.type == EventType::kText && e.text.empty()) continue;
    out.push_back(e);
  }
  return out;
}

TEST(XmlRoundTripFuzzTest, RandomDocumentsSurviveSerializationCycles) {
  Random rng(13579);
  DocGenOptions opts;
  opts.max_depth = 5;
  opts.text_prob = 0.7;
  opts.attr_prob = 0.3;
  for (int i = 0; i < 120; ++i) {
    auto doc = GenerateRandomDocument(&rng, opts);
    EventStream original = doc->ToEvents();

    auto xml = EventsToXml(original);
    ASSERT_TRUE(xml.ok()) << xml.status().ToString();

    // Re-parse in random chunks.
    EventStream reparsed;
    CollectingSink sink(&reparsed);
    XmlParser parser(&sink);
    size_t pos = 0;
    while (pos < xml->size()) {
      size_t chunk = 1 + rng.Uniform(17);
      ASSERT_TRUE(parser.Feed(xml->substr(pos, chunk)).ok());
      pos += chunk;
    }
    ASSERT_TRUE(parser.Finish().ok());

    EXPECT_EQ(NormalizeText(reparsed), NormalizeText(original))
        << "cycle " << i << "\n"
        << *xml;
    if (::testing::Test::HasFailure()) return;
  }
}

TEST(XmlRoundTripFuzzTest, IndentedOutputPreservesStructure) {
  // Pretty printing may alter whitespace-only text, but the element
  // structure and attribute values must survive.
  Random rng(8642);
  DocGenOptions opts;
  opts.max_depth = 4;
  opts.text_prob = 0.0;  // avoid mixed content, where indent adds text
  opts.attr_prob = 0.4;
  WriterOptions writer_opts;
  writer_opts.indent = true;
  for (int i = 0; i < 60; ++i) {
    auto doc = GenerateRandomDocument(&rng, opts);
    auto xml = DocumentToXml(*doc, writer_opts);
    ASSERT_TRUE(xml.ok());
    auto reparsed = ParseXmlToDocument(*xml);
    ASSERT_TRUE(reparsed.ok()) << *xml;
    // Compare structure: strip whitespace-only text events.
    EventStream a, b;
    for (const Event& e : doc->ToEvents()) {
      if (e.type != EventType::kText) a.push_back(e);
    }
    for (const Event& e : (*reparsed)->ToEvents()) {
      if (e.type != EventType::kText) b.push_back(e);
    }
    EXPECT_EQ(a, b);
    if (::testing::Test::HasFailure()) return;
  }
}

TEST(XmlRoundTripFuzzTest, ScenarioDocumentsRoundTrip) {
  Random rng(11);
  auto feed = GenerateMessageFeed(15, 5, &rng);
  auto xml = DocumentToXml(*feed);
  ASSERT_TRUE(xml.ok());
  auto reparsed = ParseXmlToDocument(*xml);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(NormalizeText((*reparsed)->ToEvents()),
            NormalizeText(feed->ToEvents()));
  for (const auto& book : GenerateBibliographyCorpus(10, 5)) {
    auto text = DocumentToXml(*book);
    ASSERT_TRUE(text.ok());
    auto back = ParseXmlToDocument(*text);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(NormalizeText((*back)->ToEvents()),
              NormalizeText(book->ToEvents()));
  }
}

TEST(XmlRoundTripFuzzTest, EscapingSurvivesHostileText) {
  auto doc = std::make_unique<XmlDocument>();
  XmlNode* root = doc->root()->AddElement("r");
  root->AddAttribute("k", "a<b>&\"c'");
  root->AddText("x < y & z > w \"quoted\"");
  auto xml = DocumentToXml(*doc);
  ASSERT_TRUE(xml.ok());
  auto back = ParseXmlToDocument(*xml);
  ASSERT_TRUE(back.ok());
  const XmlNode* r = (*back)->root_element();
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->children()[0]->text(), "a<b>&\"c'");
  EXPECT_EQ(r->StringValue(), "x < y & z > w \"quoted\"");
}

}  // namespace
}  // namespace xpstream
