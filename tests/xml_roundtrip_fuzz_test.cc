// Round-trip fuzzing of the XML substrate:
//   tree -> events -> text -> (chunked) parser -> events -> tree
// must be the identity on structure and string values, for randomly
// generated documents and random chunkings.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <string_view>
#include <vector>

#include "common/random.h"
#include "workload/doc_generator.h"
#include "workload/scenarios.h"
#include "xml/parser.h"
#include "xml/tree_builder.h"
#include "xml/writer.h"

namespace xpstream {
namespace {

/// Normalizes an event stream: merges adjacent text events (the parser
/// may split text at chunk boundaries before the TreeBuilder merges).
/// Returns an owning buffer — merged text needs its own storage now
/// that events carry views.
EventBuffer NormalizeText(const EventStream& events) {
  EventBuffer out;
  std::string pending;
  auto flush = [&] {
    if (!pending.empty()) out.Append(Event::Text(pending));
    pending.clear();
  };
  for (const Event& e : events) {
    if (e.type == EventType::kText) {
      pending += e.text;
      continue;
    }
    flush();
    out.Append(e);
  }
  flush();
  return out;
}

TEST(XmlRoundTripFuzzTest, RandomDocumentsSurviveSerializationCycles) {
  Random rng(13579);
  DocGenOptions opts;
  opts.max_depth = 5;
  opts.text_prob = 0.7;
  opts.attr_prob = 0.3;
  for (int i = 0; i < 120; ++i) {
    auto doc = GenerateRandomDocument(&rng, opts);
    EventStream original = doc->ToEvents();

    auto xml = EventsToXml(original);
    ASSERT_TRUE(xml.ok()) << xml.status().ToString();

    // Re-parse in random chunks.
    EventStream reparsed;
    CollectingSink sink(&reparsed);
    XmlParser parser(&sink);
    size_t pos = 0;
    while (pos < xml->size()) {
      size_t chunk = 1 + rng.Uniform(17);
      ASSERT_TRUE(parser.Feed(xml->substr(pos, chunk)).ok());
      pos += chunk;
    }
    ASSERT_TRUE(parser.Finish().ok());

    EXPECT_EQ(NormalizeText(reparsed), NormalizeText(original))
        << "cycle " << i << "\n"
        << *xml;
    if (::testing::Test::HasFailure()) return;
  }
}

TEST(XmlRoundTripFuzzTest, IndentedOutputPreservesStructure) {
  // Pretty printing may alter whitespace-only text, but the element
  // structure and attribute values must survive.
  Random rng(8642);
  DocGenOptions opts;
  opts.max_depth = 4;
  opts.text_prob = 0.0;  // avoid mixed content, where indent adds text
  opts.attr_prob = 0.4;
  WriterOptions writer_opts;
  writer_opts.indent = true;
  for (int i = 0; i < 60; ++i) {
    auto doc = GenerateRandomDocument(&rng, opts);
    auto xml = DocumentToXml(*doc, writer_opts);
    ASSERT_TRUE(xml.ok());
    auto reparsed = ParseXmlToDocument(*xml);
    ASSERT_TRUE(reparsed.ok()) << *xml;
    // Compare structure: strip whitespace-only text events.
    EventStream a, b;
    for (const Event& e : doc->ToEvents()) {
      if (e.type != EventType::kText) a.push_back(e);
    }
    for (const Event& e : (*reparsed)->ToEvents()) {
      if (e.type != EventType::kText) b.push_back(e);
    }
    EXPECT_EQ(a, b);
    if (::testing::Test::HasFailure()) return;
  }
}

TEST(XmlRoundTripFuzzTest, ScenarioDocumentsRoundTrip) {
  Random rng(11);
  auto feed = GenerateMessageFeed(15, 5, &rng);
  auto xml = DocumentToXml(*feed);
  ASSERT_TRUE(xml.ok());
  auto reparsed = ParseXmlToDocument(*xml);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(NormalizeText((*reparsed)->ToEvents()),
            NormalizeText(feed->ToEvents()));
  for (const auto& book : GenerateBibliographyCorpus(10, 5)) {
    auto text = DocumentToXml(*book);
    ASSERT_TRUE(text.ok());
    auto back = ParseXmlToDocument(*text);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(NormalizeText((*back)->ToEvents()),
              NormalizeText(book->ToEvents()));
  }
}

// --- structural-scan differential mode ------------------------------
//
// The tape tokenizer (StructuralIndex pre-scan) and the pre-tape
// byte-at-a-time loop (kept behind XmlParserOptions::legacy_tokenizer)
// must be observationally identical: same events, same error messages,
// event-for-event, on well-formed and hostile inputs alike, under any
// chunking. A desynchronized tape — a stray `<` in CDATA, a quote in a
// comment, a charref split across chunks — would show up here first.

/// Everything observable from one parse: the emitted event prefix
/// (deep-copied — the parser dies with this function) and the final
/// status rendering.
struct ParseOutcome {
  EventBuffer events;
  std::string status;
};

ParseOutcome ParseWithTokenizer(bool legacy, std::string_view xml,
                                const std::vector<size_t>& cuts,
                                size_t entity_cap) {
  ParseOutcome out;
  BufferingSink sink(&out.events);
  XmlParserOptions options;
  options.legacy_tokenizer = legacy;
  XmlParser parser(&sink, options);
  parser.SetMaxEntityExpansionBytes(entity_cap);
  Status status = Status::OK();
  size_t pos = 0;
  for (size_t cut : cuts) {
    if (!status.ok() || pos >= xml.size()) break;
    const size_t end = std::min(cut, xml.size());
    if (end <= pos) continue;
    status = parser.Feed(xml.substr(pos, end - pos));
    pos = end;
  }
  if (status.ok() && pos < xml.size()) status = parser.Feed(xml.substr(pos));
  if (status.ok()) status = parser.Finish();
  out.status = status.ToString();
  return out;
}

void ExpectTokenizersAgree(std::string_view xml,
                           const std::vector<size_t>& cuts,
                           size_t entity_cap = 0) {
  ParseOutcome tape = ParseWithTokenizer(false, xml, cuts, entity_cap);
  ParseOutcome legacy = ParseWithTokenizer(true, xml, cuts, entity_cap);
  EXPECT_EQ(tape.status, legacy.status) << "input: " << xml;
  EXPECT_TRUE(tape.events == legacy.events)
      << "input: " << xml << "\ntape  : "
      << EventStreamToString(tape.events.events())
      << "\nlegacy: " << EventStreamToString(legacy.events.events());
}

TEST(XmlTokenizerDifferentialTest, HostileInputs) {
  // Hand-picked desynchronization attempts: structural characters in
  // contexts where they are not structural, tokens that look almost
  // closed, and malformed tails.
  const char* inputs[] = {
      "<a><![CDATA[< not a tag <b> ]]&gt; ]]></a>",
      "<a><![CDATA[]]]></a>",
      "<a><![CDATA[]] ]]></a>",
      "<a><![CDATA[]]></a>",
      "<a><!-- quotes ' \" and <tags> and -- dashes --><b/></a>",
      "<a><!--></a>--><b/></a>",
      "<a><!---></a>",
      "<a b=\"x>y\" c='<d>'/>",
      "<a b=\"ends here>\"><c/></a>",
      "<a>&#955;&#x3BB;&amp;</a>",
      "<a>&#955</a>",
      "<a>&unknown;</a>",
      "<a>& lone</a>",
      "<a>text ]]> more</a>",
      "<?pi with <angle> brackets ?><a/>",
      "<a",
      "<a><b></a></b>",
      "<a/><b/>",
      "text outside",
      "<a>\n\nline\ncounting\n<b\n/></a>",
      "<!DOCTYPE a><a/>",
      "<a><![CDATA[",
      "<a><!-- unterminated",
      "",
      // Structural byte followed by its XOR-1 neighbor ('\"#', '<=',
      // '>?') — falsely flagged as structural by a borrow-based SWAR
      // matcher, which then corrupts every later tape offset.
      "<a href=\"#x\">t<b>text more</b></a>",
      "<a><!-- if x <= y or z >? --><b/></a>",
      "<a><![CDATA[\"#f\" a<=b c>?d]]>#</a>",
  };
  for (const char* input : inputs) {
    const size_t n = std::string_view(input).size();
    // Whole-buffer plus every tiny fixed chunking.
    ExpectTokenizersAgree(input, {n});
    for (size_t width : {1u, 2u, 3u}) {
      std::vector<size_t> cuts;
      for (size_t pos = width; pos < n + width; pos += width) {
        cuts.push_back(pos);
      }
      ExpectTokenizersAgree(input, cuts);
    }
    if (::testing::Test::HasFailure()) return;
  }
}

TEST(XmlTokenizerDifferentialTest, SplitCharrefsAndEntityCaps) {
  // Multi-byte character references split at every possible boundary,
  // with a cap low enough to trip mid-document — the failure line and
  // message must match between tokenizers.
  const std::string xml = "<a>&#955;&#x1F600;&amp;&quot;</a>";
  for (size_t cut = 1; cut < xml.size(); ++cut) {
    for (size_t cap : {0u, 1u, 3u, 100u}) {
      ExpectTokenizersAgree(xml, {cut, xml.size()}, cap);
    }
    if (::testing::Test::HasFailure()) return;
  }
}

TEST(XmlTokenizerDifferentialTest, RandomDocumentsRandomChunks) {
  Random rng(24680);
  DocGenOptions opts;
  opts.max_depth = 5;
  opts.text_prob = 0.6;
  opts.attr_prob = 0.4;
  for (int i = 0; i < 60; ++i) {
    auto doc = GenerateRandomDocument(&rng, opts);
    auto xml = DocumentToXml(*doc);
    ASSERT_TRUE(xml.ok());
    std::vector<size_t> cuts;
    size_t pos = 0;
    while (pos < xml->size()) {
      pos += 1 + rng.Uniform(13);
      cuts.push_back(pos);
    }
    ExpectTokenizersAgree(*xml, cuts);
    // Mutate one byte to something hostile and re-compare: the
    // tokenizers must also fail identically.
    std::string mutated = *xml;
    const char hostile[] = {'<', '>', '&', '"', '\'', '-', ']', '\n'};
    mutated[rng.Uniform(mutated.size())] =
        hostile[rng.Uniform(sizeof hostile)];
    ExpectTokenizersAgree(mutated, cuts);
    if (::testing::Test::HasFailure()) return;
  }
}

TEST(XmlRoundTripFuzzTest, EscapingSurvivesHostileText) {
  auto doc = std::make_unique<XmlDocument>();
  XmlNode* root = doc->root()->AddElement("r");
  root->AddAttribute("k", "a<b>&\"c'");
  root->AddText("x < y & z > w \"quoted\"");
  auto xml = DocumentToXml(*doc);
  ASSERT_TRUE(xml.ok());
  auto back = ParseXmlToDocument(*xml);
  ASSERT_TRUE(back.ok());
  const XmlNode* r = (*back)->root_element();
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->children()[0]->text(), "a<b>&\"c'");
  EXPECT_EQ(r->StringValue(), "x < y & z > w \"quoted\"");
}

}  // namespace
}  // namespace xpstream
