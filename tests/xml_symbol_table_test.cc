// Tests for xml/symbol_table.h — the shared name-interning layer the
// event pipeline dispatches on. Covers intern/resolve round-trips,
// growth across rehashes, collision-heavy adversarial name sets, the
// parser integration (events carry symbols; end tags reuse the open
// stack's symbol), and the decoded-payload boundary (attribute values
// are entity-decoded text, not symbols; names intern verbatim).

#include "xml/symbol_table.h"

#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "xml/event.h"
#include "xml/parser.h"

namespace xpstream {
namespace {

TEST(SymbolTableTest, InternResolveRoundTrip) {
  SymbolTable table;
  EXPECT_EQ(table.size(), 0u);
  Symbol a = table.Intern("alpha");
  Symbol b = table.Intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.NameOf(a), "alpha");
  EXPECT_EQ(table.NameOf(b), "beta");
  // Re-interning is idempotent and allocates no new id.
  EXPECT_EQ(table.Intern("alpha"), a);
  EXPECT_EQ(table.size(), 2u);
}

TEST(SymbolTableTest, IdsAreDenseInFirstInternOrder) {
  SymbolTable table;
  EXPECT_EQ(table.Intern("x"), 0u);
  EXPECT_EQ(table.Intern("y"), 1u);
  EXPECT_EQ(table.Intern("x"), 0u);
  EXPECT_EQ(table.Intern("z"), 2u);
}

TEST(SymbolTableTest, FindNeverInterns) {
  SymbolTable table;
  EXPECT_EQ(table.Find("ghost"), kNoSymbol);
  EXPECT_EQ(table.size(), 0u);
  Symbol a = table.Intern("real");
  EXPECT_EQ(table.Find("real"), a);
  EXPECT_EQ(table.Find("ghost"), kNoSymbol);
  EXPECT_EQ(table.size(), 1u);
}

TEST(SymbolTableTest, EmptyAndOddNamesAreDistinct) {
  SymbolTable table;
  Symbol empty = table.Intern("");
  Symbol space = table.Intern(" ");
  Symbol star = table.Intern("*");
  EXPECT_NE(empty, space);
  EXPECT_NE(space, star);
  EXPECT_EQ(table.NameOf(empty), "");
  EXPECT_EQ(table.NameOf(star), "*");
}

TEST(SymbolTableTest, ViewsStayValidAcrossGrowth) {
  SymbolTable table;
  // Capture early views, then force many rehash/growth cycles.
  Symbol first = table.Intern("first-name");
  std::string_view first_view = table.NameOf(first);
  for (int i = 0; i < 5000; ++i) {
    table.Intern("n" + std::to_string(i));
  }
  EXPECT_EQ(first_view, "first-name");          // deque storage never moves
  EXPECT_EQ(table.NameOf(first), "first-name");
  EXPECT_EQ(table.Intern("first-name"), first);
  EXPECT_EQ(table.size(), 5001u);
}

TEST(SymbolTableTest, CollisionHeavyAdversarialNames) {
  // Thousands of names sharing long common prefixes/suffixes and many
  // length-1 differences: every id must round-trip and re-resolve to
  // itself through the growth cycles the volume forces.
  SymbolTable table;
  std::vector<std::string> names;
  const std::string stem(40, 'a');
  for (int i = 0; i < 64; ++i) {
    for (int j = 0; j < 64; ++j) {
      names.push_back(stem + std::to_string(i) + "." + std::to_string(j) +
                      stem);
    }
  }
  std::vector<Symbol> ids;
  ids.reserve(names.size());
  for (const std::string& name : names) ids.push_back(table.Intern(name));
  std::set<Symbol> distinct(ids.begin(), ids.end());
  EXPECT_EQ(distinct.size(), names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    EXPECT_EQ(table.NameOf(ids[i]), names[i]);
    EXPECT_EQ(table.Intern(names[i]), ids[i]);
    EXPECT_EQ(table.Find(names[i]), ids[i]);
  }
}

TEST(SymbolTableTest, FootprintGrowsWithContent) {
  SymbolTable table;
  const size_t empty = table.FootprintBytes();
  for (int i = 0; i < 100; ++i) table.Intern("name" + std::to_string(i));
  EXPECT_GT(table.FootprintBytes(), empty);
}

// ---- parser integration --------------------------------------------

TEST(SymbolTableParserTest, ParserInternsNamesIntoTheTable) {
  SymbolTable table;
  auto events = ParseXmlToEvents(
      "<book id=\"1\"><title>streams</title><title>again</title></book>",
      &table);
  ASSERT_TRUE(events.ok());
  // Distinct names: book, id, title.
  EXPECT_EQ(table.size(), 3u);
  const Symbol book = table.Find("book");
  const Symbol title = table.Find("title");
  const Symbol id = table.Find("id");
  ASSERT_NE(book, kNoSymbol);
  ASSERT_NE(title, kNoSymbol);
  ASSERT_NE(id, kNoSymbol);
  size_t title_events = 0;
  for (const Event& e : *events) {
    if (e.HasName()) {
      ASSERT_NE(e.name_sym, kNoSymbol) << e.ToString();
      EXPECT_EQ(table.NameOf(e.name_sym), e.name) << e.ToString();
      title_events += e.name_sym == title ? 1 : 0;
    } else {
      EXPECT_EQ(e.name_sym, kNoSymbol) << e.ToString();
    }
  }
  // <title>…</title> twice: both start and end events carry the symbol.
  EXPECT_EQ(title_events, 4u);
}

TEST(SymbolTableParserTest, EndTagsReuseTheStartTagSymbol) {
  SymbolTable table;
  auto events = ParseXmlToEvents("<a><b/><b></b></a>", &table);
  ASSERT_TRUE(events.ok());
  Symbol open_b = kNoSymbol;
  for (const Event& e : *events) {
    if (e.type == EventType::kStartElement && e.name == "b") {
      open_b = e.name_sym;
    }
    if (e.type == EventType::kEndElement && e.name == "b") {
      EXPECT_EQ(e.name_sym, open_b);
    }
  }
  EXPECT_NE(open_b, kNoSymbol);
}

TEST(SymbolTableParserTest, WithoutTableEventsAreUnsymbolized) {
  auto events = ParseXmlToEvents("<a><b/></a>");
  ASSERT_TRUE(events.ok());
  for (const Event& e : *events) EXPECT_EQ(e.name_sym, kNoSymbol);
}

TEST(SymbolTableParserTest, EntityDecodedPayloadsDoNotTouchNames) {
  // Attribute values and text are entity-decoded payload; names intern
  // verbatim. The decoded value must not leak into the table.
  SymbolTable table;
  auto events = ParseXmlToEvents(
      "<doc attr=\"&lt;x&gt;\">&amp;&#65;</doc>", &table);
  ASSERT_TRUE(events.ok());
  EXPECT_EQ(table.size(), 2u);  // doc, attr
  EXPECT_EQ(table.Find("<x>"), kNoSymbol);
  EXPECT_EQ(table.Find("&A"), kNoSymbol);
  for (const Event& e : *events) {
    if (e.type == EventType::kAttribute) {
      EXPECT_EQ(e.text, "<x>");
      EXPECT_EQ(table.NameOf(e.name_sym), "attr");
    }
    if (e.type == EventType::kText) {
      EXPECT_EQ(e.text, "&A");
    }
  }
}

TEST(SymbolTableParserTest, SymbolsAreStableAcrossDocuments) {
  // One table serving a document stream: the same names resolve to the
  // same ids in every document (the property shard replay relies on).
  SymbolTable table;
  auto first = ParseXmlToEvents("<a><b/></a>", &table);
  ASSERT_TRUE(first.ok());
  const Symbol a = table.Find("a");
  const Symbol b = table.Find("b");
  auto second = ParseXmlToEvents("<b><a/><c/></b>", &table);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(table.Find("a"), a);
  EXPECT_EQ(table.Find("b"), b);
  EXPECT_EQ(table.size(), 3u);
}

TEST(SymbolTableEventTest, EqualityIgnoresTheSymbolCache) {
  // name_sym is a cache relative to a table, not part of the value:
  // streams parsed with and without a table compare equal.
  SymbolTable table;
  auto with = ParseXmlToEvents("<a x=\"1\">t</a>", &table);
  auto without = ParseXmlToEvents("<a x=\"1\">t</a>");
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(*with, *without);
}

TEST(SymbolTableEventTest, ResolveEventNameVerifiesCacheThenInterns) {
  SymbolTable table;
  // A cached symbol that checks out against the table is used as-is.
  const Symbol cached = table.Intern("cached");
  EXPECT_EQ(ResolveEventName(Event::StartElement("cached", cached), &table),
            cached);
  EXPECT_EQ(table.size(), 1u);
  // A symbol minted by some *other* table — naming a different string,
  // or out of range entirely — is not trusted: the name re-interns, so
  // verdicts never depend on a foreign id.
  const Symbol other =
      ResolveEventName(Event::StartElement("other", cached), &table);
  EXPECT_NE(other, cached);
  EXPECT_EQ(table.NameOf(other), "other");
  const Symbol far =
      ResolveEventName(Event::StartElement("far", 12345), &table);
  EXPECT_EQ(table.NameOf(far), "far");
  // Unsymbolized names intern; nameless events resolve to kNoSymbol.
  const Symbol fresh =
      ResolveEventName(Event::StartElement("fresh"), &table);
  EXPECT_EQ(table.NameOf(fresh), "fresh");
  EXPECT_EQ(ResolveEventName(Event::Text("payload"), &table), kNoSymbol);
}

}  // namespace
}  // namespace xpstream
