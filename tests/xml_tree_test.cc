#include <gtest/gtest.h>

#include "xml/node.h"
#include "xml/stats.h"
#include "xml/tree_builder.h"

namespace xpstream {
namespace {

TEST(XmlNodeTest, StringValueConcatenatesDescendantText) {
  // Paper §3.1.1: STRVAL(x) concatenates text descendants in doc order.
  auto doc = ParseXmlToDocument("<a>one<b>two</b>three<c><d>four</d></c></a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)->root_element()->StringValue(), "onetwothreefour");
}

TEST(XmlNodeTest, StringValueExcludesAttributes) {
  auto doc = ParseXmlToDocument("<a k=\"zzz\">x</a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)->root_element()->StringValue(), "x");
}

TEST(XmlNodeTest, AttributeStringValue) {
  auto doc = ParseXmlToDocument("<a k=\"v\"/>");
  ASSERT_TRUE(doc.ok());
  const XmlNode* attr = (*doc)->root_element()->children()[0].get();
  EXPECT_EQ(attr->kind(), NodeKind::kAttribute);
  EXPECT_EQ(attr->StringValue(), "v");
}

TEST(XmlNodeTest, AncestorAndDepth) {
  auto doc = ParseXmlToDocument("<a><b><c/></b></a>");
  ASSERT_TRUE(doc.ok());
  const XmlNode* a = (*doc)->root_element();
  const XmlNode* b = a->children()[0].get();
  const XmlNode* c = b->children()[0].get();
  EXPECT_TRUE(a->IsAncestorOf(c));
  EXPECT_TRUE((*doc)->root()->IsAncestorOf(c));
  EXPECT_FALSE(c->IsAncestorOf(a));
  EXPECT_FALSE(a->IsAncestorOf(a));
  EXPECT_EQ(a->Depth(), 2u);  // root node is depth 1
  EXPECT_EQ(c->Depth(), 4u);
}

TEST(XmlDocumentTest, DepthCountsElements) {
  auto doc = ParseXmlToDocument("<a><b><c>deep text</c></b><d/></a>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ((*doc)->Depth(), 3u);
}

TEST(XmlDocumentTest, ToEventsRoundTrip) {
  auto doc = ParseXmlToDocument("<a k=\"v\"><b>t</b><c/></a>");
  ASSERT_TRUE(doc.ok());
  EventStream events = (*doc)->ToEvents();
  ASSERT_TRUE(ValidateEventStream(events).ok());
  auto rebuilt = EventsToDocument(events);
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ((*rebuilt)->ToEvents(), events);
}

TEST(XmlDocumentTest, CloneIsDeepAndEqual) {
  auto doc = ParseXmlToDocument("<a><b>x</b></a>");
  ASSERT_TRUE(doc.ok());
  auto copy = (*doc)->Clone();
  EXPECT_EQ(copy->ToEvents(), (*doc)->ToEvents());
  EXPECT_NE(copy->root(), (*doc)->root());
}

TEST(XmlDocumentTest, IndexAssignsPreOrder) {
  auto doc = ParseXmlToDocument("<a><b/><c/></a>");
  ASSERT_TRUE(doc.ok());
  (*doc)->Index();
  auto nodes = (*doc)->AllNodes();
  for (size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_EQ(nodes[i]->order_index(), i);
  }
}

TEST(TreeBuilderTest, MergesAdjacentText) {
  TreeBuilder builder;
  ASSERT_TRUE(builder.OnEvent(Event::StartDocument()).ok());
  ASSERT_TRUE(builder.OnEvent(Event::StartElement("a")).ok());
  ASSERT_TRUE(builder.OnEvent(Event::Text("he")).ok());
  ASSERT_TRUE(builder.OnEvent(Event::Text("llo")).ok());
  ASSERT_TRUE(builder.OnEvent(Event::EndElement("a")).ok());
  ASSERT_TRUE(builder.OnEvent(Event::EndDocument()).ok());
  ASSERT_TRUE(builder.complete());
  auto doc = builder.TakeDocument();
  ASSERT_EQ(doc->root_element()->children().size(), 1u);
  EXPECT_EQ(doc->root_element()->StringValue(), "hello");
}

TEST(TreeBuilderTest, RejectsUnbalanced) {
  TreeBuilder builder;
  ASSERT_TRUE(builder.OnEvent(Event::StartDocument()).ok());
  EXPECT_FALSE(builder.OnEvent(Event::EndElement("a")).ok());
}

TEST(TreeBuilderTest, RejectsTextBeforeRoot) {
  TreeBuilder builder;
  ASSERT_TRUE(builder.OnEvent(Event::StartDocument()).ok());
  EXPECT_FALSE(builder.OnEvent(Event::Text("x")).ok());
}

TEST(DocumentStatsTest, CountsEverything) {
  auto doc = ParseXmlToDocument(
      "<a k=\"v\"><b>hello</b><b>hi</b><c><d/></c></a>");
  ASSERT_TRUE(doc.ok());
  DocumentStats stats = ComputeDocumentStats(**doc);
  EXPECT_EQ(stats.element_count, 5u);
  EXPECT_EQ(stats.attribute_count, 1u);
  EXPECT_EQ(stats.text_count, 2u);
  EXPECT_EQ(stats.depth, 3u);
  EXPECT_EQ(stats.max_fanout, 3u);
  EXPECT_EQ(stats.max_text_length, 5u);
  EXPECT_EQ(stats.total_text_bytes, 5u + 2u + 1u);
}

}  // namespace
}  // namespace xpstream
