#include <gtest/gtest.h>

#include "xml/tree_builder.h"
#include "xpath/evaluator.h"
#include "xpath/parser.h"

namespace xpstream {
namespace {

bool Matches(const std::string& query_text, const std::string& xml) {
  auto q = ParseQuery(query_text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  auto d = ParseXmlToDocument(xml);
  EXPECT_TRUE(d.ok()) << d.status().ToString();
  return BoolEval(**q, **d);
}

size_t CountSelected(const std::string& query_text, const std::string& xml) {
  auto q = ParseQuery(query_text);
  auto d = ParseXmlToDocument(xml);
  EXPECT_TRUE(q.ok() && d.ok());
  return FullEval(**q, **d).size();
}

TEST(EvaluatorTest, SimpleChildMatch) {
  EXPECT_TRUE(Matches("/a/b", "<a><b/></a>"));
  EXPECT_FALSE(Matches("/a/b", "<a><c/></a>"));
  EXPECT_FALSE(Matches("/a/b", "<b><a/></b>"));
}

TEST(EvaluatorTest, ChildIsNotDescendant) {
  EXPECT_FALSE(Matches("/a/b", "<a><x><b/></x></a>"));
  EXPECT_TRUE(Matches("/a//b", "<a><x><b/></x></a>"));
}

TEST(EvaluatorTest, DescendantAxis) {
  EXPECT_TRUE(Matches("//b", "<a><x><b/></x></a>"));
  EXPECT_TRUE(Matches("//a//b", "<a><a><b/></a></a>"));
  EXPECT_FALSE(Matches("//a//b", "<a><b2/></a>"));
}

TEST(EvaluatorTest, WildcardMatchesElementsOnly) {
  EXPECT_TRUE(Matches("/a/*/c", "<a><b><c/></b></a>"));
  EXPECT_FALSE(Matches("/a/*/c", "<a><c/></a>"));
}

TEST(EvaluatorTest, AttributeAxis) {
  EXPECT_TRUE(Matches("/a/@id", "<a id=\"1\"/>"));
  EXPECT_FALSE(Matches("/a/@id", "<a x=\"1\"/>"));
  EXPECT_TRUE(Matches("/a[@id = 7]", "<a id=\"7\"/>"));
  EXPECT_FALSE(Matches("/a[@id = 7]", "<a id=\"8\"/>"));
  // Attributes are not selected by the child axis.
  EXPECT_FALSE(Matches("/a/id", "<a id=\"1\"/>"));
}

TEST(EvaluatorTest, PredicateExistence) {
  EXPECT_TRUE(Matches("/a[b]", "<a><b/></a>"));
  EXPECT_TRUE(Matches("/a[b]", "<a><c/><b/></a>"));
  EXPECT_FALSE(Matches("/a[b]", "<a><c/></a>"));
}

TEST(EvaluatorTest, PredicateComparisonExistential) {
  // Paper §3.1.3 Remark example: /a[b + 2 = 5] on
  // <a><b>0</b><b>3</b></a> is true under the paper's semantics because
  // SOME b satisfies it.
  EXPECT_TRUE(Matches("/a[b + 2 = 5]", "<a><b>0</b><b>3</b></a>"));
  EXPECT_FALSE(Matches("/a[b + 2 = 5]", "<a><b>0</b><b>4</b></a>"));
}

TEST(EvaluatorTest, NumericComparisons) {
  EXPECT_TRUE(Matches("/a[b > 5]", "<a><b>6</b></a>"));
  EXPECT_FALSE(Matches("/a[b > 5]", "<a><b>5</b></a>"));
  EXPECT_FALSE(Matches("/a[b > 5]", "<a><b>junk</b></a>"));
  EXPECT_TRUE(Matches("/a[b >= 5 and b <= 5]", "<a><b>5</b></a>"));
  EXPECT_TRUE(Matches("/a[b != 4]", "<a><b>5</b></a>"));
}

TEST(EvaluatorTest, StringEquality) {
  EXPECT_TRUE(Matches("/a[b = \"xy\"]", "<a><b>xy</b></a>"));
  EXPECT_FALSE(Matches("/a[b = \"xy\"]", "<a><b>x</b></a>"));
}

TEST(EvaluatorTest, LogicalConnectives) {
  EXPECT_TRUE(Matches("/a[b and c]", "<a><b/><c/></a>"));
  EXPECT_FALSE(Matches("/a[b and c]", "<a><b/></a>"));
  EXPECT_TRUE(Matches("/a[b or c]", "<a><c/></a>"));
  EXPECT_FALSE(Matches("/a[b or c]", "<a><d/></a>"));
  EXPECT_TRUE(Matches("/a[not(b)]", "<a><c/></a>"));
  EXPECT_FALSE(Matches("/a[not(b)]", "<a><b/></a>"));
}

TEST(EvaluatorTest, NestedPredicates) {
  EXPECT_TRUE(Matches("/a[b[c > 2]]", "<a><b><c>1</c></b><b><c>3</c></b></a>"));
  EXPECT_FALSE(Matches("/a[b[c > 2]]", "<a><b><c>1</c></b></a>"));
}

TEST(EvaluatorTest, PaperFig7MatchingExample) {
  // Query /a[b > 5] against a document with two b children; matches via
  // either b whose value is > 5 (paper Fig. 7).
  EXPECT_TRUE(Matches("/a[b > 5]", "<a><b>7</b><b>9</b></a>"));
  EXPECT_FALSE(Matches("/a[b > 5]", "<a><b>1</b><b>2</b></a>"));
}

TEST(EvaluatorTest, PaperFig22Example) {
  // Paper Fig. 22 runs /a[c[.//e and f] and b] over a document shaped
  // like <a><c><d><e/></d><f/></c><c/><b/></a>.
  const std::string doc =
      "<a><c><d><e/></d><f/></c><c/><b/></a>";
  EXPECT_TRUE(Matches("/a[c[.//e and f] and b]", doc));
  EXPECT_FALSE(Matches("/a[c[.//e and f] and b]",
                       "<a><c><d><e/></d></c><b/></a>"));
}

TEST(EvaluatorTest, Theorem42Query) {
  // D from the proof of Thm 4.2 matches Q = /a[c[.//e and f] and b > 5].
  EXPECT_TRUE(Matches("/a[c[.//e and f] and b > 5]",
                      "<a><c><e/><f/></c><b>6</b></a>"));
  // Reordering children preserves the match (Claim 4.3).
  EXPECT_TRUE(Matches("/a[c[.//e and f] and b > 5]",
                      "<a><b>6</b><c><f/><e/></c></a>"));
  // Dropping any frontier member breaks it (Claim 4.4).
  EXPECT_FALSE(Matches("/a[c[.//e and f] and b > 5]",
                       "<a><b>6</b><c><f/><f/></c></a>"));
}

TEST(EvaluatorTest, RecursionQuery) {
  // Thm 4.5 example: D_{s,t} with s=110, t=010 matches //a[b and c]
  // because s_2 = t_2 = 1.
  EXPECT_TRUE(Matches("//a[b and c]",
                      "<a><b/><a><b/><a></a><c/></a></a>"));
  EXPECT_FALSE(Matches("//a[b and c]", "<a><b/><a><a></a><c/></a></a>"));
}

TEST(EvaluatorTest, DepthQueryReparenting) {
  // Thm 4.6: D_i matches /a/b; D_{i,j} (i>j) does not.
  EXPECT_TRUE(Matches("/a/b", "<a><Z><Z></Z></Z><b/><Z><Z></Z></Z></a>"));
  EXPECT_FALSE(Matches("/a/b", "<a><Z><Z><b/></Z></Z></a>"));
}

TEST(EvaluatorTest, FullEvalSelectsInDocumentOrder) {
  auto q = ParseQuery("/a/b");
  auto d = ParseXmlToDocument("<a><b>1</b><c/><b>2</b></a>");
  ASSERT_TRUE(q.ok() && d.ok());
  auto selected = FullEval(**q, **d);
  ASSERT_EQ(selected.size(), 2u);
  EXPECT_EQ(selected[0]->StringValue(), "1");
  EXPECT_EQ(selected[1]->StringValue(), "2");
  EXPECT_LT(selected[0]->order_index(), selected[1]->order_index());
}

TEST(EvaluatorTest, FullEvalRespectsPredicates) {
  EXPECT_EQ(CountSelected("/a/b[c]", "<a><b><c/></b><b/><b><c/></b></a>"),
            2u);
  EXPECT_EQ(CountSelected("//b", "<a><b><b/></b></a>"), 2u);
}

TEST(EvaluatorTest, StringValueUsesDescendantText) {
  // STRVAL concatenates nested text, so b's value is "17".
  EXPECT_TRUE(Matches("/a[b = 17]", "<a><b>1<x>7</x></b></a>"));
}

TEST(EvaluatorTest, FunctionsInPredicates) {
  EXPECT_TRUE(Matches("/a[contains(b, \"ell\")]", "<a><b>hello</b></a>"));
  EXPECT_FALSE(Matches("/a[contains(b, \"xyz\")]", "<a><b>hello</b></a>"));
  EXPECT_TRUE(
      Matches("/a[string-length(b) > 3]", "<a><b>hello</b></a>"));
  EXPECT_TRUE(Matches("/a[fn:matches(b, \"^A.*B$\")]", "<a><b>AxB</b></a>"));
  // Existential over multiple children.
  EXPECT_TRUE(Matches("/a[starts-with(b, \"q\")]",
                      "<a><b>x</b><b>qq</b></a>"));
}

TEST(EvaluatorTest, EmptyElementExistence) {
  // <b/> exists even though its string value is empty.
  EXPECT_TRUE(Matches("/a[b]", "<a><b/></a>"));
}

TEST(EvaluatorTest, MultiStepPredicatePaths) {
  EXPECT_TRUE(Matches("/a[b/c > 5]", "<a><b><c>9</c></b></a>"));
  EXPECT_FALSE(Matches("/a[b/c > 5]", "<a><b><c>2</c></b></a>"));
  EXPECT_TRUE(Matches("/a[.//d < 30]", "<a><x><y><d>29</d></y></x></a>"));
}

TEST(EvaluatorTest, RootOnlyQueryOnEmptyRoot) {
  EXPECT_FALSE(Matches("/a", "<b/>"));
  EXPECT_TRUE(Matches("/a", "<a/>"));
}

}  // namespace
}  // namespace xpstream
