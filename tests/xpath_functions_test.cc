#include <gtest/gtest.h>

#include "xpath/functions.h"

namespace xpstream {
namespace {

Value Call(const std::string& name, std::vector<Value> raw_args) {
  const FunctionSpec* spec = FunctionRegistry::Global().Find(name);
  EXPECT_NE(spec, nullptr) << name;
  std::vector<Value> converted;
  for (size_t i = 0; i < raw_args.size(); ++i) {
    converted.push_back(spec->ConvertArg(i, raw_args[i]));
  }
  return spec->eval(converted);
}

TEST(FunctionsTest, RegistryLookup) {
  EXPECT_NE(FunctionRegistry::Global().Find("contains"), nullptr);
  EXPECT_NE(FunctionRegistry::Global().Find("fn:contains"), nullptr);
  EXPECT_EQ(FunctionRegistry::Global().Find("position"), nullptr);
  EXPECT_EQ(FunctionRegistry::Global().Find("last"), nullptr);
}

TEST(FunctionsTest, StringPredicates) {
  EXPECT_TRUE(Call("contains", {Value::String("hello"), Value::String("ell")})
                  .boolean());
  EXPECT_FALSE(
      Call("contains", {Value::String("hello"), Value::String("xyz")})
          .boolean());
  EXPECT_TRUE(
      Call("starts-with", {Value::String("hello"), Value::String("he")})
          .boolean());
  EXPECT_TRUE(Call("ends-with", {Value::String("hello"), Value::String("lo")})
                  .boolean());
}

TEST(FunctionsTest, BooleanOutputsAreFlagged) {
  EXPECT_TRUE(FunctionRegistry::Global().Find("matches")->returns_boolean);
  EXPECT_TRUE(FunctionRegistry::Global().Find("boolean")->returns_boolean);
  EXPECT_FALSE(FunctionRegistry::Global().Find("concat")->returns_boolean);
  EXPECT_FALSE(
      FunctionRegistry::Global().Find("string-length")->returns_boolean);
}

TEST(FunctionsTest, Concat) {
  EXPECT_EQ(Call("concat", {Value::String("a"), Value::Number(1),
                            Value::String("b")})
                .string(),
            "a1b");
}

TEST(FunctionsTest, SubstringXPathSemantics) {
  // XPath substring is 1-based with rounding and clamping.
  EXPECT_EQ(Call("substring", {Value::String("12345"), Value::Number(2),
                               Value::Number(3)})
                .string(),
            "234");
  EXPECT_EQ(Call("substring", {Value::String("12345"), Value::Number(0)})
                .string(),
            "12345");
  EXPECT_EQ(Call("substring", {Value::String("12345"), Value::Number(1.5),
                               Value::Number(2.6)})
                .string(),
            "234");
  EXPECT_EQ(Call("substring", {Value::String("12345"), Value::Number(10)})
                .string(),
            "");
}

TEST(FunctionsTest, NormalizeSpace) {
  EXPECT_EQ(
      Call("normalize-space", {Value::String("  a\t b \n c ")}).string(),
      "a b c");
}

TEST(FunctionsTest, CaseMapping) {
  EXPECT_EQ(Call("upper-case", {Value::String("aBc")}).string(), "ABC");
  EXPECT_EQ(Call("lower-case", {Value::String("aBc")}).string(), "abc");
}

TEST(FunctionsTest, Translate) {
  EXPECT_EQ(Call("translate", {Value::String("abcabc"), Value::String("ab"),
                               Value::String("AB")})
                .string(),
            "ABcABc");
  // Characters with no target are dropped.
  EXPECT_EQ(Call("translate", {Value::String("abc"), Value::String("b"),
                               Value::String("")})
                .string(),
            "ac");
}

TEST(FunctionsTest, Numerics) {
  EXPECT_EQ(Call("number", {Value::String("42")}).number(), 42.0);
  EXPECT_EQ(Call("string-length", {Value::String("abcd")}).number(), 4.0);
  EXPECT_EQ(Call("floor", {Value::Number(2.7)}).number(), 2.0);
  EXPECT_EQ(Call("ceiling", {Value::Number(2.1)}).number(), 3.0);
  EXPECT_EQ(Call("round", {Value::Number(2.5)}).number(), 3.0);
  EXPECT_EQ(Call("round", {Value::Number(-2.5)}).number(), -2.0);
  EXPECT_EQ(Call("abs", {Value::Number(-4)}).number(), 4.0);
}

TEST(FunctionsTest, TrueFalse) {
  EXPECT_TRUE(Call("true", {}).boolean());
  EXPECT_FALSE(Call("false", {}).boolean());
}

TEST(RegexLiteTest, PaperPatterns) {
  // The three patterns from the paper's Def. 5.13 example.
  EXPECT_TRUE(RegexLiteMatch("AxyzB", "^A.*B$"));
  EXPECT_TRUE(RegexLiteMatch("AB", "^A.*B$"));
  EXPECT_FALSE(RegexLiteMatch("AxyzBq", "^A.*B$"));
  EXPECT_FALSE(RegexLiteMatch("xAB", "^A.*B$"));
  EXPECT_TRUE(RegexLiteMatch("xxAByy", "AB"));
  EXPECT_FALSE(RegexLiteMatch("AxB", "AB"));
  EXPECT_TRUE(RegexLiteMatch("AxB", "A.+B"));
  EXPECT_FALSE(RegexLiteMatch("AB", "A.+B"));
}

TEST(RegexLiteTest, StarAndPlus) {
  EXPECT_TRUE(RegexLiteMatch("aaab", "^a*b$"));
  EXPECT_TRUE(RegexLiteMatch("b", "^a*b$"));
  EXPECT_FALSE(RegexLiteMatch("b", "^a+b$"));
  EXPECT_TRUE(RegexLiteMatch("ab", "^a+b$"));
  EXPECT_TRUE(RegexLiteMatch("anything", ""));
}

TEST(RegexLiteTest, DollarAnchor) {
  EXPECT_TRUE(RegexLiteMatch("xyzb", "b$"));
  EXPECT_FALSE(RegexLiteMatch("bxyz", "b$"));
}

}  // namespace
}  // namespace xpstream
