#include <gtest/gtest.h>

#include "xpath/lexer.h"

namespace xpstream {
namespace {

std::vector<TokenType> Types(const std::string& text) {
  auto tokens = LexXPath(text);
  EXPECT_TRUE(tokens.ok()) << tokens.status().ToString();
  std::vector<TokenType> out;
  if (!tokens.ok()) return out;
  for (const Token& t : *tokens) out.push_back(t.type);
  return out;
}

TEST(LexerTest, SimplePath) {
  EXPECT_EQ(Types("/a/b"),
            (std::vector<TokenType>{TokenType::kSlash, TokenType::kName,
                                    TokenType::kSlash, TokenType::kName,
                                    TokenType::kEnd}));
}

TEST(LexerTest, DoubleSlashAndDotDoubleSlash) {
  EXPECT_EQ(Types("//a[.//b]"),
            (std::vector<TokenType>{
                TokenType::kDoubleSlash, TokenType::kName,
                TokenType::kLBracket, TokenType::kDotDoubleSlash,
                TokenType::kName, TokenType::kRBracket, TokenType::kEnd}));
}

TEST(LexerTest, ComparisonOperators) {
  auto tokens = LexXPath("= != < <= > >=");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 7u);
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ((*tokens)[i].type, TokenType::kCompOp);
  }
  EXPECT_EQ((*tokens)[1].text, "!=");
  EXPECT_EQ((*tokens)[3].text, "<=");
}

TEST(LexerTest, Numbers) {
  auto tokens = LexXPath("5 3.25 .5");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].number, 5.0);
  EXPECT_EQ((*tokens)[1].number, 3.25);
  EXPECT_EQ((*tokens)[2].number, 0.5);
}

TEST(LexerTest, StringLiterals) {
  auto tokens = LexXPath("\"abc\" 'x y'");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kString);
  EXPECT_EQ((*tokens)[0].text, "abc");
  EXPECT_EQ((*tokens)[1].text, "x y");
}

TEST(LexerTest, FnPrefixedNames) {
  auto tokens = LexXPath("fn:matches");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kName);
  EXPECT_EQ((*tokens)[0].text, "fn:matches");
}

TEST(LexerTest, StarAndArith) {
  EXPECT_EQ(Types("* + -"),
            (std::vector<TokenType>{TokenType::kStar, TokenType::kPlus,
                                    TokenType::kMinus, TokenType::kEnd}));
}

TEST(LexerTest, AtAndDollar) {
  EXPECT_EQ(Types("$/a/@b"),
            (std::vector<TokenType>{TokenType::kDollar, TokenType::kSlash,
                                    TokenType::kName, TokenType::kSlash,
                                    TokenType::kAt, TokenType::kName,
                                    TokenType::kEnd}));
}

TEST(LexerTest, ErrorUnterminatedString) {
  EXPECT_FALSE(LexXPath("\"abc").ok());
}

TEST(LexerTest, ErrorBareExclamation) {
  EXPECT_FALSE(LexXPath("a ! b").ok());
}

TEST(LexerTest, ErrorStrayCharacter) {
  EXPECT_FALSE(LexXPath("/a#b").ok());
}

TEST(LexerTest, PositionsRecorded) {
  auto tokens = LexXPath("/a [b]");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].position, 0u);
  EXPECT_EQ((*tokens)[1].position, 1u);
  EXPECT_EQ((*tokens)[2].position, 3u);
}

}  // namespace
}  // namespace xpstream
