#include <gtest/gtest.h>

#include "xpath/parser.h"

namespace xpstream {
namespace {

std::unique_ptr<Query> MustParse(const std::string& text) {
  auto q = ParseQuery(text);
  EXPECT_TRUE(q.ok()) << text << ": " << q.status().ToString();
  return q.ok() ? std::move(q).value() : nullptr;
}

TEST(ParserTest, SimpleChain) {
  auto q = MustParse("/a/b/c");
  ASSERT_NE(q, nullptr);
  EXPECT_EQ(q->size(), 4u);  // root + 3 steps
  const QueryNode* a = q->root()->successor();
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->ntest(), "a");
  EXPECT_EQ(a->axis(), Axis::kChild);
  EXPECT_EQ(q->output_node()->ntest(), "c");
}

TEST(ParserTest, DescendantAxis) {
  auto q = MustParse("//a//b");
  const QueryNode* a = q->root()->successor();
  EXPECT_EQ(a->axis(), Axis::kDescendant);
  EXPECT_EQ(a->successor()->axis(), Axis::kDescendant);
}

TEST(ParserTest, AttributeAxis) {
  auto q = MustParse("/a/@href");
  const QueryNode* attr = q->output_node();
  EXPECT_EQ(attr->axis(), Axis::kAttribute);
  EXPECT_EQ(attr->ntest(), "href");
}

TEST(ParserTest, Wildcard) {
  auto q = MustParse("/a/*/b");
  const QueryNode* star = q->root()->successor()->successor();
  EXPECT_TRUE(star->is_wildcard());
}

TEST(ParserTest, PaperFig2Query) {
  // Paper Fig. 2: /a[c[.//e and f] and b > 5]/b
  auto q = MustParse("/a[c[.//e and f] and b > 5]/b");
  ASSERT_NE(q, nullptr);
  const QueryNode* a = q->root()->successor();
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->ntest(), "a");
  // a has 3 children: c, b (predicate children) and b (successor).
  EXPECT_EQ(a->children().size(), 3u);
  EXPECT_EQ(a->PredicateChildren().size(), 2u);
  ASSERT_NE(a->successor(), nullptr);
  EXPECT_EQ(a->successor()->ntest(), "b");
  // The successor of the root is a; OUT(Q) is the trailing b.
  EXPECT_EQ(q->output_node(), a->successor());
  // c has two predicate children: e (descendant) and f (child).
  const QueryNode* c = a->PredicateChildren()[0];
  EXPECT_EQ(c->ntest(), "c");
  ASSERT_EQ(c->PredicateChildren().size(), 2u);
  EXPECT_EQ(c->PredicateChildren()[0]->ntest(), "e");
  EXPECT_EQ(c->PredicateChildren()[0]->axis(), Axis::kDescendant);
  EXPECT_EQ(c->PredicateChildren()[1]->axis(), Axis::kChild);
}

TEST(ParserTest, SuccessionLeafAndRoot) {
  auto q = MustParse("/a[b/c]/d");
  const QueryNode* a = q->root()->successor();
  const QueryNode* b = a->PredicateChildren()[0];
  ASSERT_EQ(b->ntest(), "b");
  const QueryNode* c = b->successor();
  ASSERT_NE(c, nullptr);
  // LEAF(b) = c; c's succession root is b; b is a succession root.
  EXPECT_EQ(b->SuccessionLeaf(), c);
  EXPECT_EQ(c->SuccessionRoot(), b);
  EXPECT_FALSE(b->is_successor());
  EXPECT_TRUE(c->is_successor());
}

TEST(ParserTest, PredicateExpressionShapes) {
  EXPECT_NE(MustParse("/a[b = \"x\"]"), nullptr);
  EXPECT_NE(MustParse("/a[b > 5 and c < 3 and d]"), nullptr);
  EXPECT_NE(MustParse("/a[b or not(c)]"), nullptr);
  EXPECT_NE(MustParse("/a[b + 2 = 5]"), nullptr);
  EXPECT_NE(MustParse("/a[b * 2 > c0]"), nullptr);
  EXPECT_NE(MustParse("/a[-b < 5]"), nullptr);
  EXPECT_NE(MustParse("/a[contains(b, \"x\")]"), nullptr);
  EXPECT_NE(MustParse("/a[fn:matches(b, \"^A.*B$\")]"), nullptr);
  EXPECT_NE(MustParse("/a[concat(b, \"-\", c) = \"x-y\"]"), nullptr);
  EXPECT_NE(MustParse("/a[string-length(b) > 3]"), nullptr);
  EXPECT_NE(MustParse("/a[b div 2 = 3 and c mod 2 = 1]"), nullptr);
  EXPECT_NE(MustParse("/a[@id = 7]"), nullptr);
  EXPECT_NE(MustParse("/a[(b and c) or d]"), nullptr);
  EXPECT_NE(MustParse("/a[./b > 1]"), nullptr);
}

TEST(ParserTest, DollarPrefixAccepted) {
  EXPECT_NE(MustParse("$/a/b"), nullptr);
}

TEST(ParserTest, PredicateChildrenReferencedOnce) {
  auto q = MustParse("/a[b and c and d > 1]");
  const QueryNode* a = q->root()->successor();
  EXPECT_EQ(a->PredicateChildren().size(), 3u);
  EXPECT_EQ(a->successor(), nullptr);
  EXPECT_EQ(q->output_node(), a);
}

TEST(ParserTest, RelPathChainInPredicate) {
  auto q = MustParse("/a[b//c/d]");
  const QueryNode* b = q->root()->successor()->PredicateChildren()[0];
  const QueryNode* c = b->successor();
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->axis(), Axis::kDescendant);
  ASSERT_NE(c->successor(), nullptr);
  EXPECT_EQ(c->successor()->ntest(), "d");
}

TEST(ParserTest, ToStringRoundTrips) {
  const char* queries[] = {
      "/a[c[.//e and f] and b > 5]/b",
      "//a[b and c]",
      "/a/b",
      "/a[*/b > 5 and c/b//d > 12 and .//d < 30]",
      "/a[contains(b, \"x\") and c]/d/@id",
      "/book[price < 30]/title",
  };
  for (const char* text : queries) {
    auto q1 = MustParse(text);
    ASSERT_NE(q1, nullptr) << text;
    std::string printed = q1->ToString();
    auto q2 = MustParse(printed);
    ASSERT_NE(q2, nullptr) << printed;
    EXPECT_TRUE(q1->Equals(*q2)) << text << " -> " << printed;
  }
}

TEST(ParserTest, IdsArePreOrder) {
  auto q = MustParse("/a[b and c]/d");
  auto nodes = q->AllNodes();
  for (size_t i = 0; i < nodes.size(); ++i) {
    EXPECT_EQ(nodes[i]->id(), i);
  }
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseQuery("").ok());
  EXPECT_FALSE(ParseQuery("a/b").ok());        // must be absolute
  EXPECT_FALSE(ParseQuery("/a[").ok());        // unterminated predicate
  EXPECT_FALSE(ParseQuery("/a]").ok());        // stray bracket
  EXPECT_FALSE(ParseQuery("/a[b >]").ok());    // missing operand
  EXPECT_FALSE(ParseQuery("/a[nope(b)]").ok());  // unknown function
  EXPECT_FALSE(ParseQuery("/a[contains(b)]").ok());  // arity
  EXPECT_FALSE(ParseQuery("/@*").ok());        // wildcard attribute
  EXPECT_FALSE(ParseQuery("//").ok());         // missing node test
  EXPECT_FALSE(ParseQuery("/a/b extra").ok()); // trailing garbage
}

TEST(ParserTest, EqualsDistinguishesQueries) {
  auto q1 = MustParse("/a[b and c]");
  auto q2 = MustParse("/a[c and b]");
  auto q3 = MustParse("/a[b and c]");
  EXPECT_FALSE(q1->Equals(*q2));
  EXPECT_TRUE(q1->Equals(*q3));
}

}  // namespace
}  // namespace xpstream
