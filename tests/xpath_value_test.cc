#include <gtest/gtest.h>

#include <cmath>

#include "xpath/value.h"

namespace xpstream {
namespace {

TEST(ValueTest, EffectiveBooleanValue) {
  // Paper §3.1.3: EBV gives predicates their existential semantics.
  EXPECT_TRUE(Value::Boolean(true).EffectiveBooleanValue());
  EXPECT_FALSE(Value::Boolean(false).EffectiveBooleanValue());
  EXPECT_TRUE(Value::Number(1).EffectiveBooleanValue());
  EXPECT_FALSE(Value::Number(0).EffectiveBooleanValue());
  EXPECT_FALSE(Value::Number(std::nan("")).EffectiveBooleanValue());
  EXPECT_TRUE(Value::String("x").EffectiveBooleanValue());
  EXPECT_FALSE(Value::String("").EffectiveBooleanValue());
  EXPECT_FALSE(Value::EmptySequence().EffectiveBooleanValue());
  EXPECT_TRUE(
      Value::Sequence({Value::String("")}).EffectiveBooleanValue());
}

TEST(ValueTest, ToNumberConversions) {
  EXPECT_EQ(Value::String("42").ToNumber(), 42.0);
  EXPECT_EQ(Value::String(" -1.5 ").ToNumber(), -1.5);
  EXPECT_TRUE(std::isnan(Value::String("abc").ToNumber()));
  EXPECT_TRUE(std::isnan(Value::String("").ToNumber()));
  EXPECT_EQ(Value::Boolean(true).ToNumber(), 1.0);
  EXPECT_TRUE(std::isnan(Value::EmptySequence().ToNumber()));
  EXPECT_EQ(Value::Sequence({Value::String("7")}).ToNumber(), 7.0);
}

TEST(ValueTest, ToStringConversions) {
  EXPECT_EQ(Value::Number(5).ToString(), "5");
  EXPECT_EQ(Value::Number(2.5).ToString(), "2.5");
  EXPECT_EQ(Value::Boolean(true).ToString(), "true");
  EXPECT_EQ(Value::EmptySequence().ToString(), "");
}

TEST(ValueTest, SequenceFlattening) {
  Value nested = Value::Sequence(
      {Value::Number(1),
       Value::Sequence({Value::Number(2), Value::Number(3)})});
  ASSERT_EQ(nested.sequence().size(), 3u);
  EXPECT_TRUE(nested.sequence()[2].is_atomic());
}

TEST(ValueTest, Atomized) {
  EXPECT_EQ(Value::Number(1).Atomized().size(), 1u);
  EXPECT_EQ(Value::EmptySequence().Atomized().size(), 0u);
}

TEST(CompareAtomicTest, NumericOrdering) {
  EXPECT_TRUE(CompareAtomic(Value::Number(3), CompOp::kLt, Value::Number(5)));
  EXPECT_FALSE(CompareAtomic(Value::Number(5), CompOp::kLt, Value::Number(5)));
  EXPECT_TRUE(CompareAtomic(Value::Number(5), CompOp::kLe, Value::Number(5)));
  EXPECT_TRUE(CompareAtomic(Value::Number(6), CompOp::kGt, Value::Number(5)));
  EXPECT_TRUE(CompareAtomic(Value::Number(5), CompOp::kGe, Value::Number(5)));
}

TEST(CompareAtomicTest, OrderingCoercesStrings) {
  // XPath 1.0: <, <=, >, >= always compare numerically.
  EXPECT_TRUE(
      CompareAtomic(Value::String("6"), CompOp::kGt, Value::Number(5)));
  EXPECT_FALSE(
      CompareAtomic(Value::String("abc"), CompOp::kGt, Value::Number(5)));
}

TEST(CompareAtomicTest, EqualityByType) {
  EXPECT_TRUE(
      CompareAtomic(Value::String("5.0"), CompOp::kEq, Value::Number(5)));
  EXPECT_FALSE(
      CompareAtomic(Value::String("5.0"), CompOp::kEq, Value::String("5")));
  EXPECT_TRUE(
      CompareAtomic(Value::String("x"), CompOp::kEq, Value::String("x")));
  EXPECT_TRUE(
      CompareAtomic(Value::String("x"), CompOp::kNe, Value::String("y")));
  EXPECT_TRUE(CompareAtomic(Value::Boolean(true), CompOp::kEq,
                            Value::String("nonempty")));
}

TEST(CompareAtomicTest, NaNComparesFalse) {
  Value nan = Value::String("junk");
  EXPECT_FALSE(CompareAtomic(nan, CompOp::kEq, Value::Number(5)));
  EXPECT_FALSE(CompareAtomic(nan, CompOp::kLt, Value::Number(5)));
  EXPECT_FALSE(CompareAtomic(nan, CompOp::kGe, Value::Number(5)));
  // != on NaN is also false under our IEEE-style rule.
  EXPECT_FALSE(CompareAtomic(nan, CompOp::kNe, Value::Number(5)));
}

TEST(ApplyArithTest, Basics) {
  EXPECT_EQ(ApplyArith(Value::Number(2), ArithOp::kAdd, Value::Number(3)), 5);
  EXPECT_EQ(ApplyArith(Value::Number(2), ArithOp::kSub, Value::Number(3)), -1);
  EXPECT_EQ(ApplyArith(Value::Number(2), ArithOp::kMul, Value::Number(3)), 6);
  EXPECT_EQ(ApplyArith(Value::Number(7), ArithOp::kDiv, Value::Number(2)),
            3.5);
  EXPECT_EQ(ApplyArith(Value::Number(7), ArithOp::kIDiv, Value::Number(2)), 3);
  EXPECT_EQ(ApplyArith(Value::Number(7), ArithOp::kMod, Value::Number(2)), 1);
}

TEST(ApplyArithTest, StringCoercionAndNaN) {
  EXPECT_EQ(ApplyArith(Value::String("4"), ArithOp::kAdd, Value::Number(1)),
            5);
  EXPECT_TRUE(std::isnan(
      ApplyArith(Value::String("x"), ArithOp::kAdd, Value::Number(1))));
  EXPECT_TRUE(std::isnan(
      ApplyArith(Value::Number(1), ArithOp::kIDiv, Value::Number(0))));
  EXPECT_TRUE(std::isnan(
      ApplyArith(Value::Number(1), ArithOp::kMod, Value::Number(0))));
}

}  // namespace
}  // namespace xpstream
