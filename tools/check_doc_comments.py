#!/usr/bin/env python3
"""Doc-comment lint for the public headers.

Every public declaration in include/xpstream/*.h must carry a Doxygen
comment: a `///` block on the lines above it, or a trailing `///<` on
the declaration line. "Public declaration" means anything a library
user can name — free functions, classes/structs/enums and their public
members, enumerators — plus the header itself (a `/// \\file` block).

Exempt (documenting them restates the language):
  * constructors, destructors, operators, `= delete` / `= default`;
  * friend declarations and forward declarations (`class X;`);
  * everything in `private:` / `protected:` sections.

The scanner is a line-based heuristic, deliberately dependency-free
(no libclang in CI); it tracks brace depth and access sections, which
is enough for the house style these headers follow. Exit 0 clean,
1 findings, 2 usage error.

    $ tools/check_doc_comments.py include/xpstream/*.h
"""

import re
import sys

SCOPE_RE = re.compile(r"^(?:class|struct|enum(?:\s+class)?)\s+(\w+)")
FORWARD_RE = re.compile(r"^(?:class|struct)\s+\w+;")
ACCESS_RE = re.compile(r"^(public|protected|private)\s*(slots)?:")


def strip_comment(line):
    """Code portion of a line (trailing // comment removed)."""
    pos = line.find("//")
    return line if pos < 0 else line[:pos]


def is_exempt(code, scope_name):
    if code.startswith(("friend ", "~")) or "operator" in code:
        return True
    if "= delete" in code or "= default" in code:
        return True
    if FORWARD_RE.match(code):
        return True
    # Constructor: the current scope's own name opening a paren.
    if scope_name and re.match(rf"^(?:explicit\s+)?{scope_name}\s*\(", code):
        return True
    return False


def check(path):
    findings = []
    with open(path, encoding="utf-8") as f:
        lines = f.readlines()

    if not any(line.lstrip().startswith("/// \\file") for line in lines[:12]):
        findings.append((path, 1, "missing '/// \\file' header comment"))

    depth = 0
    # Scope stack: (interior brace depth, kind, name, access-is-public).
    scopes = [(0, "namespace", "", True)]
    doc_pending = False
    continuation = False
    paren_balance = 0

    for lineno, raw in enumerate(lines, 1):
        stripped = raw.strip()
        if not stripped:
            doc_pending = False
            continue
        if stripped.startswith("///"):
            doc_pending = True
            continue
        if stripped.startswith(("//", "#")):
            doc_pending = False
            continue

        code = strip_comment(stripped).strip()
        if not code:
            doc_pending = False
            continue

        scope_depth, kind, scope_name, is_public = scopes[-1]
        access = ACCESS_RE.match(code)
        if access:
            scopes[-1] = (scope_depth, kind, scope_name,
                          access.group(1) == "public")
            doc_pending = False
            continue

        starts_decl = (depth == scope_depth and not continuation
                       and not code.startswith("}")
                       and not code.startswith("namespace"))
        if starts_decl and is_public and not is_exempt(code, scope_name):
            documented = doc_pending or "///<" in stripped
            if not documented:
                name = code.split("{")[0].split("(")[0].strip()
                findings.append(
                    (path, lineno, f"undocumented public declaration: "
                                   f"'{name[:60]}'"))

        # Entering a class/struct/enum scope?
        opened = SCOPE_RE.match(code)
        opens_scope = (opened and not code.rstrip().endswith(";")
                       and code.count("{") > code.count("}"))

        depth += code.count("{") - code.count("}")
        paren_balance += code.count("(") - code.count(")")
        while len(scopes) > 1 and depth < scopes[-1][0]:
            scopes.pop()
        if opens_scope:
            scope_kind = code.split()[0]
            default_public = scope_kind in ("struct", "enum")
            # A type nested in a private section is itself invisible to
            # users; its members inherit that, whatever their access.
            scopes.append((depth, scope_kind, opened.group(1),
                           default_public and is_public))

        # A declaration continues until its parens balance and it ends
        # with a terminator; bodies (deeper brace depth) are skipped by
        # the depth check above.
        if depth == scope_depth:
            continuation = (paren_balance > 0
                            or not code.endswith((";", "{", "}", ":")))
        else:
            continuation = False
            paren_balance = 0
        doc_pending = False

    return findings


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    findings = []
    for path in argv[1:]:
        findings.extend(check(path))
    for path, lineno, message in findings:
        print(f"{path}:{lineno}: {message}")
    if findings:
        print(f"\n{len(findings)} finding(s). Every public declaration in "
              "include/xpstream/ needs a /// doc comment.", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
